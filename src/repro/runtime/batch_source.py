"""Streaming batch source: a bounded double-buffer between the engines.

The paper's accelerator is a pipeline: Striders fill page buffers and emit
cleansed tuples *while* the execution engine consumes earlier ones.  A
:class:`BatchSource` reproduces that overlap in software.  A producer
thread walks the access engine's page stream (bulk Strider walk + one-shot
payload decode) and pushes per-page tuple chunks into a bounded queue — the
software double buffer — while the consumer (the epoch loop) assembles
exactly the merge batches the materialized path would have sliced from the
fully-extracted matrix.

Two invariants make streaming safe to use on the default path:

* **identical batches** — batch boundaries are computed over the logical
  concatenation of the chunk stream, so every yielded batch is value-equal
  to ``rows[start:start+batch_size]`` of the materialized extraction, and
  :meth:`rows` returns that very matrix (consumed chunks are cached, so the
  second and later epochs train from memory like before);
* **identical counters** — the producer runs the *same* page walk in the
  same page order, so Strider/AXI counters are byte-for-byte those of the
  up-front extraction.

A source built with :meth:`from_rows` is the degenerate, already-extracted
case (overlap off); it lets every execution path consume one interface.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Callable, Iterable, Iterator

import numpy as np

from repro.exceptions import RetryExhaustedError, TransientError
from repro.obs.telemetry import telemetry
from repro.reliability.faults import fault_point
from repro.reliability.retry import RetryPolicy, RetryStats

#: queue sentinel: the producer is done.
_DONE = object()

#: default queue depth — one chunk being consumed, one being produced.
DEFAULT_QUEUE_DEPTH = 2

#: fault-injection site fired once per chunk the producer delivers.
PRODUCER_FAULT_SITE = "runtime.batch_source.producer"

#: buffered queue-wait observations are flushed to the shared histogram in
#: batches of this size (and at end of stream) — a per-chunk ``observe``
#: would dominate the armed telemetry cost of the streaming paths.
_WAIT_FLUSH = 128


class _ProducerError:
    """Wrapper carrying a producer-thread exception to the consumer."""

    def __init__(self, error: BaseException) -> None:
        self.error = error


class BatchSource:
    """Bounded, restartable stream of decoded training-tuple chunks."""

    def __init__(
        self,
        chunks: Iterable[np.ndarray],
        n_columns: int,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        start: bool = True,
        chunk_factory: Callable[[], Iterable[np.ndarray]] | None = None,
        retry: RetryPolicy | None = None,
    ) -> None:
        """Wrap a chunk stream in the bounded producer/consumer buffer.

        Args:
            chunks: the chunk stream the producer thread walks.
            n_columns: columns of every chunk (for the empty-stream case).
            queue_depth: bounded queue capacity (the double buffer).
            start: spawn the producer immediately (default).
            chunk_factory: optional zero-argument callable returning a
                *fresh* chunk stream with reset upstream state; required
                for producer restart after a transient fault.  Delivered
                chunks are replayed from the cache, the fresh stream is
                fast-forwarded past them, so the consumer observes the
                exact fault-free chunk sequence and counters.
            retry: optional :class:`~repro.reliability.RetryPolicy`
                bounding producer restarts (needs ``chunk_factory``).
        """
        self.n_columns = n_columns
        self._chunk_iter = iter(chunks)
        self._chunk_factory = chunk_factory
        self._retry = retry
        self._sleeps = retry.sleeps() if retry is not None else None
        #: restart/fault counters of this source's producer.
        self.retry_stats = RetryStats()
        self._restarts = 0
        #: chunks the next producer run discards before delivering (the
        #: consumer already holds them in the cache).
        self._skip = 0
        #: chunks pulled off the queue so far, in stream order.  Batch
        #: iteration reads from this cache first, so the stream can be
        #: re-walked (later epochs, tail batches) without re-extraction.
        self._cache: list[np.ndarray] = []
        self._exhausted = False
        #: the unrecovered producer error, re-raised on any later pull so
        #: a retried consumer can never silently read a truncated stream.
        self._error: BaseException | None = None
        self._rows: np.ndarray | None = None
        self._queue: queue.Queue | None = None
        self._queue_depth = max(1, queue_depth)
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        #: ``(session, produce_hist, consume_hist)`` — the armed telemetry
        #: session's wait histograms, cached so the per-chunk hot path does
        #: not pay a registry lookup per observation.
        self._wait_hists = None
        #: locally-buffered wait seconds awaiting a bulk flush; index 1 is
        #: the produce side (producer thread only), index 2 the consume
        #: side (consumer thread only), so neither list is shared.
        self._wait_buf: tuple[None, list, list] = (None, [], [])
        if start:
            self.start(queue_depth)

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_rows(cls, rows: np.ndarray) -> "BatchSource":
        """A pre-extracted source (the overlap-off / oracle configuration)."""
        rows = np.asarray(rows)
        n_columns = rows.shape[1] if rows.ndim > 1 else 0
        source = cls(iter(()), n_columns=n_columns, start=False)
        source._cache = [rows]
        source._exhausted = True
        source._rows = rows
        return source

    # ------------------------------------------------------------------ #
    # producer
    # ------------------------------------------------------------------ #
    def start(self, queue_depth: int = DEFAULT_QUEUE_DEPTH) -> None:
        """Spawn the producer thread filling the bounded chunk queue."""
        if self._thread is not None or self._exhausted:
            return
        self._queue_depth = max(1, queue_depth)
        self._queue = queue.Queue(maxsize=self._queue_depth)
        self._thread = threading.Thread(
            target=self._produce, name="batch-source-producer", daemon=True
        )
        if self._retry is not None and self.retry_stats.attempts == 0:
            self.retry_stats.attempts = 1
        self._thread.start()

    def _produce(self) -> None:
        try:
            try:
                skip = self._skip
                self._skip = 0
                for chunk in self._chunk_iter:
                    if skip:
                        # Replay after a restart: the consumer already holds
                        # this chunk in its cache; re-walk it silently so the
                        # upstream counters match the fault-free run.
                        skip -= 1
                        continue
                    fault_point(PRODUCER_FAULT_SITE)
                    obs = telemetry()
                    if obs is not None:
                        start = time.perf_counter()
                        delivered = self._put(chunk)
                        self._note_wait(obs, 1, time.perf_counter() - start)
                    else:
                        delivered = self._put(chunk)
                    if not delivered:
                        return
            finally:
                self._flush_waits(1)
        except BaseException as error:  # noqa: BLE001 - forwarded to consumer
            self._put(_ProducerError(error))
            return
        self._put(_DONE)

    def _join_producer(self, drain: bool = False) -> None:
        """Join the producer thread so no error path leaks it.

        ``drain`` keeps emptying the queue while waiting, releasing a
        producer blocked on a full queue (the abort path).
        """
        thread = self._thread
        if thread is None:
            return
        while thread.is_alive():
            if drain and self._queue is not None:
                try:
                    self._queue.get_nowait()
                except queue.Empty:
                    pass
            thread.join(timeout=0.05)
        self._thread = None

    def _restart_producer(self, error: TransientError) -> None:
        """Restart the producer after a transient fault (bounded by policy).

        The dead producer is joined, a fresh chunk stream is built from
        the factory (which resets upstream counters), fast-forwarded past
        the chunks the cache already holds, and a new producer thread
        resumes delivery — so the chunk sequence and upstream counters the
        consumer observes are bit-identical to a fault-free run.
        """
        self.retry_stats.faults += 1
        self._restarts += 1
        if self._restarts >= self._retry.max_attempts:
            self._exhausted = True
            self._join_producer()
            exhausted = RetryExhaustedError(
                f"batch-source producer failed on all "
                f"{self._retry.max_attempts} attempt(s)"
            )
            exhausted.__cause__ = error
            self._error = exhausted
            raise exhausted
        self.retry_stats.retries += 1
        self._join_producer()
        self._sleeps.sleep(self._restarts)
        self._chunk_iter = iter(self._chunk_factory())
        self._skip = len(self._cache)
        self._queue = queue.Queue(maxsize=self._queue_depth)
        self._thread = threading.Thread(
            target=self._produce, name="batch-source-producer", daemon=True
        )
        self.retry_stats.attempts += 1
        self._thread.start()

    def _note_wait(self, obs, side: int, seconds: float) -> None:
        """Buffer one queue-wait observation (1 = produce, 2 = consume).

        These sites fire once per chunk, so they record into shared
        histograms instead of emitting spans (see
        :data:`repro.obs.metrics.HISTOGRAM_SITES`), and the hot path only
        appends to a thread-private list — the histogram sees bulk
        flushes every :data:`_WAIT_FLUSH` chunks and at end of stream.
        """
        buffer = self._wait_buf[side]
        buffer.append(seconds)
        if len(buffer) >= _WAIT_FLUSH:
            self._flush_waits(side, obs)

    def _flush_waits(self, side: int, obs=None) -> None:
        """Flush a side's buffered waits into its session histogram.

        A producer/consumer write race on the cached histogram pair is
        benign — both threads resolve the identical registry entries.
        """
        buffer = self._wait_buf[side]
        if not buffer:
            return
        if obs is None:
            obs = telemetry()
            if obs is None:
                # Disarmed before the flush (end-of-stream after the
                # session closed): the observations have no destination.
                buffer.clear()
                return
        cached = self._wait_hists
        if cached is None or cached[0] is not obs:
            cached = (
                obs,
                obs.metrics.histogram("runtime.batch_source.produce"),
                obs.metrics.histogram("runtime.batch_source.consume"),
            )
            self._wait_hists = cached
        cached[side].observe_many(buffer)
        buffer.clear()

    def _put(self, item) -> bool:
        """Blocking put that still honours :meth:`abort`."""
        while not self._stop.is_set():
            try:
                self._queue.put(item, timeout=0.1)
                return True
            except queue.Full:
                continue
        return False

    def abort(self) -> None:
        """Release a producer blocked on a full queue (consumer gave up).

        Call on error paths only: the producer exits at its next put, the
        queue is drained so that exit is immediate, and any later attempt
        to consume the stream raises instead of blocking on data that will
        never arrive.
        """
        self._stop.set()
        if self._queue is not None:
            while True:
                try:
                    self._queue.get_nowait()
                except queue.Empty:
                    break
        self._join_producer(drain=True)

    # ------------------------------------------------------------------ #
    # consumer
    # ------------------------------------------------------------------ #
    def _chunk_at(self, index: int) -> np.ndarray | None:
        """The ``index``-th chunk of the stream, pulling as needed."""
        while len(self._cache) <= index:
            if self._error is not None:
                raise self._error
            if self._exhausted:
                return None
            obs = telemetry()
            if obs is not None:
                start = time.perf_counter()
                item = self._get()
                self._note_wait(obs, 2, time.perf_counter() - start)
            else:
                item = self._get()
            if item is _DONE:
                self._flush_waits(2)
                self._exhausted = True
                self._join_producer()
                return None
            if isinstance(item, _ProducerError):
                self._flush_waits(2)
                if (
                    self._chunk_factory is not None
                    and self._retry is not None
                    and isinstance(item.error, TransientError)
                ):
                    self._restart_producer(item.error)
                    continue
                self._exhausted = True
                self._error = item.error
                self._join_producer()
                raise item.error
            self._cache.append(item)
        return self._cache[index]

    def _get(self):
        """Blocking get that still honours :meth:`abort`.

        An aborted producer exits without enqueuing ``_DONE``, so a plain
        ``Queue.get`` could block forever; polling with a timeout lets a
        consumer that was already parked on the queue observe the stop
        flag and fail instead of deadlocking.
        """
        while True:
            if self._stop.is_set():
                raise RuntimeError("batch source was aborted before draining")
            try:
                return self._queue.get(timeout=0.1)
            except queue.Empty:
                continue

    def has_rows(self) -> bool:
        """True once the stream is known to contain at least one tuple.

        Blocks only until the first non-empty chunk (usually the first
        decoded page) or the end of an empty stream — the cheap peek the
        sharded runtime uses to pick its active segments without
        materializing whole partitions.
        """
        index = 0
        while True:
            chunk = self._chunk_at(index)
            if chunk is None:
                return False
            if len(chunk):
                return True
            index += 1

    def batches(self, batch_size: int) -> Iterator[np.ndarray]:
        """Yield consecutive ``batch_size``-row batches (tail may be short).

        Boundaries are identical to slicing the materialized matrix, even
        when batches span page chunks.  The iterator is restartable: chunks
        already consumed are served from the cache.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        pending: list[np.ndarray] = []
        have = 0
        index = 0
        while True:
            chunk = self._chunk_at(index)
            if chunk is None:
                break
            index += 1
            if not len(chunk):
                continue
            pending.append(chunk)
            have += len(chunk)
            while have >= batch_size:
                yield _take(pending, batch_size)
                have -= batch_size
        if have:
            yield _take(pending, have)

    def rows(self) -> np.ndarray:
        """Drain the stream and return the full extracted matrix (cached)."""
        if self._rows is None:
            index = len(self._cache)
            while self._chunk_at(index) is not None:
                index += 1
            if self._cache:
                self._rows = np.vstack(self._cache)
            else:
                self._rows = np.empty((0, self.n_columns))
            # Collapse the per-chunk cache onto the stacked matrix so the
            # source does not hold the partition in memory twice; batch
            # iteration keeps working off the single remaining chunk.
            self._cache = [self._rows]
        return self._rows


def _take(pending: list[np.ndarray], count: int) -> np.ndarray:
    """Remove exactly ``count`` rows from the front of ``pending``."""
    taken: list[np.ndarray] = []
    need = count
    while need:
        head = pending[0]
        if len(head) <= need:
            taken.append(head)
            pending.pop(0)
            need -= len(head)
        else:
            taken.append(head[:need])
            pending[0] = head[need:]
            need = 0
    if len(taken) == 1:
        return taken[0]
    return np.concatenate(taken, axis=0)
