"""Streaming batch source: a bounded double-buffer between the engines.

The paper's accelerator is a pipeline: Striders fill page buffers and emit
cleansed tuples *while* the execution engine consumes earlier ones.  A
:class:`BatchSource` reproduces that overlap in software.  A producer
thread walks the access engine's page stream (bulk Strider walk + one-shot
payload decode) and pushes per-page tuple chunks into a bounded queue — the
software double buffer — while the consumer (the epoch loop) assembles
exactly the merge batches the materialized path would have sliced from the
fully-extracted matrix.

Two invariants make streaming safe to use on the default path:

* **identical batches** — batch boundaries are computed over the logical
  concatenation of the chunk stream, so every yielded batch is value-equal
  to ``rows[start:start+batch_size]`` of the materialized extraction, and
  :meth:`rows` returns that very matrix (consumed chunks are cached, so the
  second and later epochs train from memory like before);
* **identical counters** — the producer runs the *same* page walk in the
  same page order, so Strider/AXI counters are byte-for-byte those of the
  up-front extraction.

A source built with :meth:`from_rows` is the degenerate, already-extracted
case (overlap off); it lets every execution path consume one interface.
"""

from __future__ import annotations

import queue
import threading
from typing import Iterable, Iterator

import numpy as np

#: queue sentinel: the producer is done.
_DONE = object()

#: default queue depth — one chunk being consumed, one being produced.
DEFAULT_QUEUE_DEPTH = 2


class _ProducerError:
    """Wrapper carrying a producer-thread exception to the consumer."""

    def __init__(self, error: BaseException) -> None:
        self.error = error


class BatchSource:
    """Bounded, restartable stream of decoded training-tuple chunks."""

    def __init__(
        self,
        chunks: Iterable[np.ndarray],
        n_columns: int,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        start: bool = True,
    ) -> None:
        self.n_columns = n_columns
        self._chunk_iter = iter(chunks)
        #: chunks pulled off the queue so far, in stream order.  Batch
        #: iteration reads from this cache first, so the stream can be
        #: re-walked (later epochs, tail batches) without re-extraction.
        self._cache: list[np.ndarray] = []
        self._exhausted = False
        self._rows: np.ndarray | None = None
        self._queue: queue.Queue | None = None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        if start:
            self.start(queue_depth)

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_rows(cls, rows: np.ndarray) -> "BatchSource":
        """A pre-extracted source (the overlap-off / oracle configuration)."""
        rows = np.asarray(rows)
        n_columns = rows.shape[1] if rows.ndim > 1 else 0
        source = cls(iter(()), n_columns=n_columns, start=False)
        source._cache = [rows]
        source._exhausted = True
        source._rows = rows
        return source

    # ------------------------------------------------------------------ #
    # producer
    # ------------------------------------------------------------------ #
    def start(self, queue_depth: int = DEFAULT_QUEUE_DEPTH) -> None:
        """Spawn the producer thread filling the bounded chunk queue."""
        if self._thread is not None or self._exhausted:
            return
        self._queue = queue.Queue(maxsize=max(1, queue_depth))
        self._thread = threading.Thread(
            target=self._produce, name="batch-source-producer", daemon=True
        )
        self._thread.start()

    def _produce(self) -> None:
        try:
            for chunk in self._chunk_iter:
                if not self._put(chunk):
                    return
        except BaseException as error:  # noqa: BLE001 - forwarded to consumer
            self._put(_ProducerError(error))
            return
        self._put(_DONE)

    def _put(self, item) -> bool:
        """Blocking put that still honours :meth:`abort`."""
        while not self._stop.is_set():
            try:
                self._queue.put(item, timeout=0.1)
                return True
            except queue.Full:
                continue
        return False

    def abort(self) -> None:
        """Release a producer blocked on a full queue (consumer gave up).

        Call on error paths only: the producer exits at its next put, the
        queue is drained so that exit is immediate, and any later attempt
        to consume the stream raises instead of blocking on data that will
        never arrive.
        """
        self._stop.set()
        if self._queue is not None:
            while True:
                try:
                    self._queue.get_nowait()
                except queue.Empty:
                    break

    # ------------------------------------------------------------------ #
    # consumer
    # ------------------------------------------------------------------ #
    def _chunk_at(self, index: int) -> np.ndarray | None:
        """The ``index``-th chunk of the stream, pulling as needed."""
        while len(self._cache) <= index:
            if self._exhausted:
                return None
            item = self._get()
            if item is _DONE:
                self._exhausted = True
                return None
            if isinstance(item, _ProducerError):
                self._exhausted = True
                raise item.error
            self._cache.append(item)
        return self._cache[index]

    def _get(self):
        """Blocking get that still honours :meth:`abort`.

        An aborted producer exits without enqueuing ``_DONE``, so a plain
        ``Queue.get`` could block forever; polling with a timeout lets a
        consumer that was already parked on the queue observe the stop
        flag and fail instead of deadlocking.
        """
        while True:
            if self._stop.is_set():
                raise RuntimeError("batch source was aborted before draining")
            try:
                return self._queue.get(timeout=0.1)
            except queue.Empty:
                continue

    def has_rows(self) -> bool:
        """True once the stream is known to contain at least one tuple.

        Blocks only until the first non-empty chunk (usually the first
        decoded page) or the end of an empty stream — the cheap peek the
        sharded runtime uses to pick its active segments without
        materializing whole partitions.
        """
        index = 0
        while True:
            chunk = self._chunk_at(index)
            if chunk is None:
                return False
            if len(chunk):
                return True
            index += 1

    def batches(self, batch_size: int) -> Iterator[np.ndarray]:
        """Yield consecutive ``batch_size``-row batches (tail may be short).

        Boundaries are identical to slicing the materialized matrix, even
        when batches span page chunks.  The iterator is restartable: chunks
        already consumed are served from the cache.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        pending: list[np.ndarray] = []
        have = 0
        index = 0
        while True:
            chunk = self._chunk_at(index)
            if chunk is None:
                break
            index += 1
            if not len(chunk):
                continue
            pending.append(chunk)
            have += len(chunk)
            while have >= batch_size:
                yield _take(pending, batch_size)
                have -= batch_size
        if have:
            yield _take(pending, have)

    def rows(self) -> np.ndarray:
        """Drain the stream and return the full extracted matrix (cached)."""
        if self._rows is None:
            index = len(self._cache)
            while self._chunk_at(index) is not None:
                index += 1
            if self._cache:
                self._rows = np.vstack(self._cache)
            else:
                self._rows = np.empty((0, self.n_columns))
            # Collapse the per-chunk cache onto the stacked matrix so the
            # source does not hold the partition in memory twice; batch
            # iteration keeps working off the single remaining chunk.
            self._cache = [self._rows]
        return self._rows


def _take(pending: list[np.ndarray], count: int) -> np.ndarray:
    """Remove exactly ``count`` rows from the front of ``pending``."""
    taken: list[np.ndarray] = []
    need = count
    while need:
        head = pending[0]
        if len(head) <= need:
            taken.append(head)
            pending.pop(0)
            need -= len(head)
        else:
            taken.append(head[:need])
            pending[0] = head[need:]
            need = 0
    if len(taken) == 1:
        return taken[0]
    return np.concatenate(taken, axis=0)
