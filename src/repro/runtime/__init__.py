"""Pipelined epoch runtime: streaming extraction + synchronization policies.

This layer turns the reproduction's epoch execution into the pipeline the
paper's hardware actually is: a :class:`BatchSource` overlaps the access
engine's page walk with the execution engine's compute through a bounded
double-buffer queue, a :class:`SyncPolicy` decides when (and how eagerly)
per-segment models are merged, and the :class:`EpochDriver` is the single
epoch loop shared by the single-engine, sharded lock-step and sharded
thread-pool execution strategies.

The layer is dependency-light by design (NumPy and the exception hierarchy
only): ``hw`` and ``cluster`` plug their strategies *into* it, never the
other way around.
"""

from repro.runtime.batch_source import BatchSource, DEFAULT_QUEUE_DEPTH
from repro.runtime.epoch_driver import DriverResult, EpochDriver, EpochStep
from repro.runtime.shm import (
    SharedPageStore,
    SharedPageStoreHandle,
    live_store_names,
)
from repro.runtime.sync_policy import (
    AsyncMerge,
    BulkSynchronous,
    StaleSynchronous,
    SYNC_POLICIES,
    SyncPolicy,
    make_sync_policy,
)

__all__ = [
    "AsyncMerge",
    "BatchSource",
    "BulkSynchronous",
    "DEFAULT_QUEUE_DEPTH",
    "DriverResult",
    "EpochDriver",
    "EpochStep",
    "SharedPageStore",
    "SharedPageStoreHandle",
    "StaleSynchronous",
    "SYNC_POLICIES",
    "SyncPolicy",
    "live_store_names",
    "make_sync_policy",
]
