"""Sharded multi-segment execution: one DAnA accelerator per segment.

The paper's scale-out deployment (Figure 13) attaches one DAnA accelerator
to every Greenplum segment; each accelerator trains on its segment's slice
of the table and the per-segment models are combined every epoch — the
classic UDA ``transition``/``merge``/``final`` structure that MADlib-style
in-database analytics is built on.  :class:`ShardedDAnA` reproduces that
deployment functionally on top of the PR-1 batched pipeline:

* a :class:`~repro.cluster.partitioner.Partitioner` assigns heap pages to
  segments through the RDBMS catalog;
* every segment is a :class:`~repro.cluster.segment_worker.SegmentWorker`
  owning a full accelerator instance (its own Striders, execution engine,
  schedule-derived counters);
* per-segment models are combined by a
  :class:`~repro.cluster.aggregator.ModelAggregator`, whose cycle cost is
  booked on a cluster-level :class:`~repro.hw.tree_bus.TreeBus` — the
  software stand-in for the host-side merge the paper performs between
  FPGAs.

Epoch scheduling lives in the shared pipeline runtime
(:mod:`repro.runtime`): both execution strategies are
:class:`~repro.runtime.EpochStep` plugins for the one
:class:`~repro.runtime.EpochDriver` loop, extraction streams through
bounded :class:`~repro.runtime.BatchSource` double buffers (each segment's
Strider walk overlaps training and the other segments' walks), and a
:class:`~repro.runtime.SyncPolicy` decides the merge cadence —
``bulk_synchronous`` (barriered, bit-identical to the pre-runtime path),
``stale_synchronous`` (windows of merge-free local epochs) or
``async_merge`` (per-epoch merge overlapped with next-epoch preparation).

The two strategies produce identical per-segment counters:

* ``lockstep`` (default for merge-based graphs with 2+ segments) — all
  segments advance through their batch streams in lock step, and each step
  is evaluated by **one** segment-axis :class:`CompiledTape` run over a
  ``(B, S, ...)`` block.  This amortises the Python-side per-batch cost
  over the segment axis, so sharding speeds the simulation up even on a
  single core — and the NumPy kernels still release the GIL, so it scales
  further with real cores;
* ``threads`` — each segment trains its window independently on a thread
  pool (NumPy kernels drop the GIL).  This is the only strategy for
  row-addressed graphs (LRMF gathers cannot carry a segment axis) and the
  parity oracle for ``lockstep``.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.cluster.aggregator import ModelAggregator
from repro.cluster.partitioner import Partitioner
from repro.cluster.process_pool import (
    IPCStats,
    ProcessSegmentPool,
    SegmentTask,
    builder_metadata,
    chaos_from_active_injector,
)
from repro.cluster.segment_worker import (
    SEGMENT_EPOCH_FAULT_SITE,
    SegmentWorker,
    run_stale_window,
)
from repro.runtime.shm import SharedPageStore
from repro.exceptions import ConfigurationError
from repro.reliability.faults import fault_point
from repro.reliability.retry import RetryPolicy, RetryStats
from repro.hw.access_engine import AccessEngineStats
from repro.hw.accelerator import DAnAAccelerator
from repro.hw.execution_engine import EngineRunStats, TrainingResult
from repro.hw.fpga import DEFAULT_FPGA, FPGASpec
from repro.hw.tree_bus import TreeBus, TreeBusStats
from repro.runtime import EpochDriver, EpochStep, SyncPolicy, make_sync_policy
from repro.translator.hdfg import NodeKind
from repro.translator.tape import CompiledTape, TapeCompilationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.algorithms.base import AlgorithmSpec
    from repro.compiler.execution_binary import ExecutionBinary
    from repro.rdbms.database import Database

EXECUTION_STRATEGIES = ("auto", "lockstep", "threads", "processes")


@dataclass
class SegmentReport:
    """One segment's contribution to a sharded run."""

    segment_id: int
    pages: int
    tuples_extracted: int
    engine_stats: EngineRunStats
    access_stats: AccessEngineStats

    @property
    def access_cycles(self) -> int:
        """This segment's extraction stage: AXI transfer + Strider walk."""
        return (
            self.access_stats.strider_cycles_critical + self.access_stats.axi_cycles
        )

    @property
    def engine_cycles(self) -> int:
        """This segment's compute stage (schedule-derived engine cycles)."""
        return self.engine_stats.total_cycles

    @property
    def cycles(self) -> int:
        """This segment's serial path: AXI transfer + Striders + engine.

        The single definition of a segment's cycle cost — the run result
        and :mod:`repro.perf.segment_model` both derive their critical
        paths from it (the perf model also books the *pipelined* variant,
        ``max(access, engine)``, for streaming runs).
        """
        return self.engine_cycles + self.access_cycles


@dataclass
class ClusterStats:
    """Cross-segment activity of one sharded run."""

    segments: int
    mode: str
    partition_strategy: str
    aggregation_strategy: str
    epochs_run: int = 0
    merges_performed: int = 0
    tree_bus: TreeBusStats = field(default_factory=TreeBusStats)
    #: synchronization policy of the run (see :mod:`repro.runtime`).
    sync: str = "bulk_synchronous"
    staleness: int = 1
    #: True when extraction streamed through the double-buffer pipeline.
    stream: bool = False
    #: retry/fault counters of the run (all zero when fault-free).
    retry: RetryStats = field(default_factory=RetryStats)
    #: parent<->worker IPC volume (non-zero only for ``processes`` runs).
    ipc: IPCStats = field(default_factory=IPCStats)
    #: concurrent fan-out width of the run: ``min(segments, cpu count)``
    #: (0 for lockstep, which runs all segments on one tape).
    worker_limit: int = 0

    @property
    def cross_merge_cycles(self) -> int:
        return self.tree_bus.cycles


@dataclass
class ShardedRunResult:
    """Functional result + per-segment hardware activity of a sharded run."""

    models: dict[str, np.ndarray]
    epochs_run: int
    converged: bool
    segments: list[SegmentReport]
    cluster: ClusterStats
    #: WAL LSN the run's page scans were pinned to (the model's watermark).
    snapshot_lsn: int = 0

    # -- AcceleratorRunResult-compatible surface ------------------------ #
    @property
    def tuples_extracted(self) -> int:
        return sum(s.tuples_extracted for s in self.segments)

    @property
    def engine_stats(self) -> EngineRunStats:
        """Aggregate (summed) engine counters across segments."""
        total = EngineRunStats()
        for seg in self.segments:
            total.tuples_processed += seg.engine_stats.tuples_processed
            total.batches_processed += seg.engine_stats.batches_processed
            total.update_rule_cycles += seg.engine_stats.update_rule_cycles
            total.merge_cycles += seg.engine_stats.merge_cycles
            total.post_merge_cycles += seg.engine_stats.post_merge_cycles
            total.convergence_cycles += seg.engine_stats.convergence_cycles
        total.epochs_completed = self.epochs_run
        return total

    @property
    def access_stats(self) -> AccessEngineStats:
        """Aggregate access counters (critical path = slowest segment)."""
        total = AccessEngineStats()
        for seg in self.segments:
            total.pages_processed += seg.access_stats.pages_processed
            total.tuples_extracted += seg.access_stats.tuples_extracted
            total.bytes_transferred += seg.access_stats.bytes_transferred
            total.axi_cycles += seg.access_stats.axi_cycles
            total.strider_cycles_total += seg.access_stats.strider_cycles_total
            total.shifter_cycles += seg.access_stats.shifter_cycles
        if self.segments:
            total.strider_cycles_critical = max(
                seg.access_stats.strider_cycles_critical for seg in self.segments
            )
        return total

    @property
    def critical_path_cycles(self) -> int:
        """Modelled wall-clock cycles: slowest segment + cross-segment merge.

        Segments run concurrently (one accelerator each), so the epoch
        critical path is the slowest segment's engine + access time plus
        the serial cross-segment merge on the cluster tree bus.  This is
        the *barriered* (bulk-synchronous, no-overlap) book-keeping; the
        pipelined variant lives in
        :meth:`repro.perf.segment_model.ShardedRunCost.pipelined_critical_path_cycles`.
        """
        if not self.segments:
            return self.cluster.cross_merge_cycles
        slowest = max(seg.cycles for seg in self.segments)
        return slowest + self.cluster.cross_merge_cycles


class ShardedDAnA:
    """Executes one compiled UDF across N per-segment DAnA accelerators."""

    def __init__(
        self,
        database: "Database",
        binary: "ExecutionBinary",
        spec: "AlgorithmSpec",
        segments: int,
        fpga: FPGASpec = DEFAULT_FPGA,
        partition_strategy: str = "round_robin",
        aggregation: str | None = None,
        execution: str = "auto",
        seed: int = 0,
        use_striders: bool = True,
        sync: str | SyncPolicy = "bulk_synchronous",
        staleness: int = 1,
        stream: bool = True,
        retry: RetryPolicy | None = None,
    ) -> None:
        if segments < 1:
            raise ConfigurationError("a sharded run needs at least one segment")
        if execution not in EXECUTION_STRATEGIES:
            raise ConfigurationError(
                f"unknown execution strategy {execution!r}; "
                f"expected one of {EXECUTION_STRATEGIES}"
            )
        self.database = database
        self.binary = binary
        self.spec = spec
        self.segments = segments
        self.fpga = fpga
        self.seed = int(seed)
        self.use_striders = use_striders
        self.stream = stream
        self.retry = retry
        self.sync_policy = (
            sync if isinstance(sync, SyncPolicy) else make_sync_policy(sync, staleness)
        )
        self.partitioner = Partitioner(partition_strategy, seed=seed)
        self._row_addressed = any(
            node.kind is NodeKind.GATHER for node in binary.graph.nodes()
        )
        self.aggregation_strategy = aggregation or (
            "gradient_sum" if self._row_addressed else "average"
        )
        ModelAggregator(self.aggregation_strategy)  # fail fast on bad strategy
        self.execution = execution
        #: workers of the most recent :meth:`train` call (for introspection).
        self.workers: list[SegmentWorker] = []
        # The segment-axis tape is compiled once per sharded run; graphs it
        # cannot carry (gathers) fall back to per-segment execution.
        self._segment_tape: CompiledTape | None = None
        if (
            segments > 1
            and spec.bind_batch is not None
            and execution not in ("threads", "processes")
        ):
            try:
                self._segment_tape = CompiledTape(binary.graph, segment_axis=True)
            except TapeCompilationError:
                self._segment_tape = None
        if execution == "lockstep" and self._segment_tape is None:
            raise ConfigurationError(
                "lockstep execution requires a merge-based graph with a batch "
                "binder and at least two segments"
            )
        if execution == "processes":
            # Fail fast in the parent: worker processes rebuild the spec
            # from its registry recipe, which hand-written specs lack.
            builder_metadata(spec)

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    @property
    def mode(self) -> str:
        if self.execution == "processes":
            return "processes"
        return "lockstep" if self._segment_tape is not None else "threads"

    def train(
        self,
        table_name: str,
        epochs: int,
        shuffle: bool = False,
        convergence_check: bool = True,
    ) -> ShardedRunResult:
        """Run sync-policy-scheduled epochs over streaming partition sources."""
        if self.execution == "processes":
            return self._train_processes(table_name, epochs, shuffle, convergence_check)
        heapfile = self.database.table(table_name)
        pool = self.database.buffer_pool
        # Pin the whole run to the heap as of this LSN: partitioning and
        # every segment's page pulls use the snapshot, so concurrent
        # inserts cannot perturb an in-flight run.
        as_of = self.database.wal.current_lsn
        # One accelerator per segment, all generated from the same compiled
        # binary (same design, same Strider program, same schedule).  Fresh
        # instances per run keep per-segment counters clean, and re-deriving
        # the spawned seeds makes repeated runs bit-identical.  A single
        # segment draws from default_rng(seed) directly — the same stream
        # the single-engine path consumes — so segments=1 stays bit-exact
        # even with shuffle=True.
        if self.segments == 1:
            rngs = [np.random.default_rng(self.seed)]
        else:
            rngs = [
                np.random.default_rng(s)
                for s in np.random.SeedSequence(self.seed).spawn(self.segments)
            ]
        self.workers = [
            SegmentWorker(
                segment_id=i,
                accelerator=DAnAAccelerator(
                    binary=self.binary, schema=self.spec.schema, fpga=self.fpga
                ),
                partition=part,
                rng=rngs[i],
            )
            for i, part in enumerate(
                self.partitioner.partition_table(
                    self.database, table_name, self.segments, as_of_lsn=as_of
                )
            )
        ]
        for worker in self.workers:
            if self.stream:
                # Streaming: every segment's Strider walk starts now, on its
                # own producer thread; the first epoch consumes batches as
                # pages decode instead of waiting for full materialisation.
                worker.open_source(
                    heapfile,
                    pool,
                    use_striders=self.use_striders,
                    retry=self.retry,
                    as_of_lsn=as_of,
                )
            else:
                worker.extract(
                    heapfile, pool, use_striders=self.use_striders, as_of_lsn=as_of
                )
        # Fresh cluster bus + aggregator per run so counters describe this
        # run only (the aggregator books every cross-segment merge on it).
        self.cluster_bus = TreeBus(alu_count=self.binary.design.aus_per_cluster)
        self.aggregator = ModelAggregator(
            self.aggregation_strategy, tree_bus=self.cluster_bus
        )
        cluster = ClusterStats(
            segments=self.segments,
            mode=self.mode,
            partition_strategy=self.partitioner.strategy,
            aggregation_strategy=self.aggregator.strategy,
            tree_bus=self.cluster_bus.stats,
            sync=self.sync_policy.name,
            staleness=self.sync_policy.staleness,
            stream=self.stream,
            worker_limit=(
                0
                if self.mode == "lockstep"
                else min(self.segments, max(1, os.cpu_count() or 1))
            ),
        )
        if self.mode == "lockstep":
            step: EpochStep = _LockstepStep(self, shuffle, convergence_check)
        else:
            step = _ThreadsStep(self, shuffle, convergence_check)
        driver = EpochDriver(step, self.sync_policy, convergence_check)
        models = {
            k: np.array(v, dtype=np.float64) for k, v in self.spec.initial_models.items()
        }
        try:
            result = driver.run(models, epochs)
        except BaseException:
            # Error path: release producer threads still blocked on their
            # bounded queues (successful runs drain every source instead).
            for worker in self.workers:
                if worker.source is not None:
                    worker.source.abort()
            raise
        finally:
            step.finish()
        cluster.epochs_run = result.epochs_run
        cluster.merges_performed = result.merges_performed
        # Fold every recovery the run performed into one counter set:
        # per-worker window retries, producer restarts, lockstep retries.
        for worker in self.workers:
            cluster.retry.merge(worker.retry_stats)
            if worker.source is not None:
                cluster.retry.merge(worker.source.retry_stats)
        step_stats = getattr(step, "retry_stats", None)
        if step_stats is not None:
            cluster.retry.merge(step_stats)
        reports = [
            SegmentReport(
                segment_id=w.segment_id,
                pages=len(w.partition),
                tuples_extracted=w.tuples_extracted,
                engine_stats=w.engine.stats,
                access_stats=w.access_stats,
            )
            for w in self.workers
        ]
        return ShardedRunResult(
            models=result.models,
            epochs_run=result.epochs_run,
            converged=result.converged,
            segments=reports,
            cluster=cluster,
            snapshot_lsn=as_of,
        )

    def _train_processes(
        self,
        table_name: str,
        epochs: int,
        shuffle: bool,
        convergence_check: bool,
    ) -> ShardedRunResult:
        """Train with one worker *process* per segment over shared pages.

        The table's page images are exported once into a
        :class:`~repro.runtime.shm.SharedPageStore`; each spawned worker
        attaches, rebuilds its accelerator from the spec's registry recipe,
        extracts its partition from the zero-copy views, and trains stale
        windows on command.  Merge and convergence decisions stay here in
        the parent, driven by the same :class:`~repro.runtime.EpochDriver`
        + :class:`~repro.runtime.SyncPolicy` loop as the in-process
        strategies — which (with the shared per-segment RNG recipe) is what
        makes the three strategies bit-identical.  Workers always
        materialise their partitions (no cross-process streaming), so
        ``stream`` is recorded as ``False`` for these runs.
        """
        heapfile = self.database.table(table_name)
        pool = self.database.buffer_pool
        builder = builder_metadata(self.spec)
        table_entry = self.database.catalog.table(table_name)
        as_of = self.database.wal.current_lsn
        # Children rebuild the accelerator design from n_tuples; it must be
        # the count the parent's binary was *compiled* with (recorded in the
        # binary metadata), not the live catalog count — a table that grew
        # since compile would otherwise rebuild a different design and break
        # counter bit-identity with the threads strategy.
        design_tuples = int(
            self.binary.metadata.get("n_tuples", max(1, table_entry.tuple_count))
        )
        parts = list(
            self.partitioner.partition_table(
                self.database, table_name, self.segments, as_of_lsn=as_of
            )
        )
        tasks = [
            SegmentTask(
                segment_id=i,
                udf_name=self.binary.udf_name,
                algorithm=builder["algorithm"],
                n_features=builder["n_features"],
                model_topology=tuple(builder["model_topology"]),
                hyperparameters=self.spec.hyperparameters,
                layout=heapfile.layout,
                fpga=self.fpga,
                n_tuples=design_tuples,
                page_nos=tuple(part.page_nos),
                seed=self.seed,
                segments=self.segments,
                use_striders=self.use_striders,
                shuffle=shuffle,
                retry=self.retry,
            )
            for i, part in enumerate(parts)
        ]
        self.workers = []  # in-process workers exist only in children
        self.cluster_bus = TreeBus(alu_count=self.binary.design.aus_per_cluster)
        self.aggregator = ModelAggregator(
            self.aggregation_strategy, tree_bus=self.cluster_bus
        )
        store = SharedPageStore.from_heapfile(heapfile, pool, as_of_lsn=as_of)
        process_pool = ProcessSegmentPool(
            tasks,
            store.handle(),
            retry=self.retry,
            chaos=chaos_from_active_injector(),
            storage_sink=self.database.storage.stats,
        )
        cluster = ClusterStats(
            segments=self.segments,
            mode="processes",
            partition_strategy=self.partitioner.strategy,
            aggregation_strategy=self.aggregator.strategy,
            tree_bus=self.cluster_bus.stats,
            sync=self.sync_policy.name,
            staleness=self.sync_policy.staleness,
            stream=False,
            ipc=process_pool.ipc,
            worker_limit=process_pool.worker_limit,
        )
        models = {
            k: np.array(v, dtype=np.float64) for k, v in self.spec.initial_models.items()
        }
        try:
            process_pool.start()
            step = _ProcessesStep(self, process_pool, convergence_check)
            driver = EpochDriver(step, self.sync_policy, convergence_check)
            result = driver.run(models, epochs)
        finally:
            process_pool.shutdown()
            store.close()
            store.unlink()
        cluster.epochs_run = result.epochs_run
        cluster.merges_performed = result.merges_performed
        for worker in process_pool.workers:
            cluster.retry.merge(worker.child_retry_stats)
            cluster.retry.merge(worker.supervision_retry_stats)
        reports = [
            SegmentReport(
                segment_id=w.segment_id,
                pages=len(w.partition),
                tuples_extracted=w.tuples_extracted,
                engine_stats=w.engine_stats,
                access_stats=w.access_stats,
            )
            for w in process_pool.workers
        ]
        return ShardedRunResult(
            models=result.models,
            epochs_run=result.epochs_run,
            converged=result.converged,
            segments=reports,
            cluster=cluster,
            snapshot_lsn=as_of,
        )


# ---------------------------------------------------------------------- #
# processes strategy (one OS process per segment, shared-memory pages)
# ---------------------------------------------------------------------- #
class _ProcessesStep(EpochStep):
    """Per-segment worker processes trained window-by-window.

    The state contract matches :class:`_ThreadsStep` exactly — a list of
    each active segment's current model mapping — but a window dispatch
    crosses a pipe instead of a thread pool, and each reply carries the
    child's counters/telemetry alongside its models (the pool merges those
    as replies arrive).
    """

    merges = True

    def __init__(
        self,
        sharded: ShardedDAnA,
        pool: ProcessSegmentPool,
        convergence_check: bool,
    ) -> None:
        self.aggregator = sharded.aggregator
        self.convergence_check = convergence_check
        self.pool = pool
        self.workers = pool.active

    @property
    def active(self) -> bool:
        return bool(self.workers)

    def begin(self, models):
        return [models for _ in self.workers]

    def run_epoch(self, state, epoch_index):
        state, converged, _executed = self.run_window(state, epoch_index, 1)
        return state, converged

    def run_window(self, state, epoch_index, count):
        if not self.workers:
            return state, False, count
        payloads = self.pool.run_window(state, count, self.convergence_check)
        state = [p["models"] for p in payloads]
        executed = max(p["epochs_run"] for p in payloads)
        return state, all(p["converged"] for p in payloads), executed

    def merge(self, state, base):
        return self.aggregator.merge(state, base=base)

    def broadcast(self, models, state):
        return [models for _ in self.workers]

    def finish(self) -> None:
        # The pool itself is shut down by the facade (it owns the store
        # lifecycle too); nothing per-run to release here.
        pass


# ---------------------------------------------------------------------- #
# threads strategy (per-segment engines on a pool; LRMF + oracle)
# ---------------------------------------------------------------------- #
class _ThreadsStep(EpochStep):
    """Per-segment engines trained concurrently on a thread pool.

    State is the list of each active segment's current model mapping.  A
    stale-synchronous window of ``k`` epochs is one pool dispatch per
    segment (``engine.train(epochs=k)``) — ``k``× fewer barrier joins than
    the per-epoch bulk-synchronous cadence, which is where the measured
    pipeline speedup of the threads mode comes from.
    """

    merges = True

    def __init__(
        self, sharded: ShardedDAnA, shuffle: bool, convergence_check: bool
    ) -> None:
        self.spec = sharded.spec
        self.aggregator = sharded.aggregator
        self.shuffle = shuffle
        self.convergence_check = convergence_check
        self.retry = sharded.retry
        self.workers = [w for w in sharded.workers if w.has_rows()]
        self.executor: ThreadPoolExecutor | None = None
        max_workers = min(sharded.segments, max(1, os.cpu_count() or 1))
        if max_workers > 1 and len(self.workers) > 1:
            # NumPy kernels release the GIL, so per-segment windows run
            # with real wall-clock overlap on multicore hosts; one
            # executor serves every window of the run.
            self.executor = ThreadPoolExecutor(max_workers=max_workers)

    @property
    def active(self) -> bool:
        return bool(self.workers)

    def begin(self, models):
        return [models for _ in self.workers]

    def run_epoch(self, state, epoch_index):
        state, converged, _executed = self.run_window(state, epoch_index, 1)
        return state, converged

    def run_window(self, state, epoch_index, count):
        if not self.workers:
            return state, False, count
        if self.executor is not None:
            futures = [
                self.executor.submit(self._worker_window, w, state[i], count)
                for i, w in enumerate(self.workers)
            ]
            results = [f.result() for f in futures]
        else:
            results = [
                self._worker_window(w, state[i], count)
                for i, w in enumerate(self.workers)
            ]
        state = [r.models for r in results]
        executed = max(r.epochs_run for r in results)
        return state, all(r.converged for r in results), executed

    def _worker_window(self, worker: SegmentWorker, models, count: int):
        """One segment's stale window as a single pool task (see
        :func:`~repro.cluster.segment_worker.run_stale_window`)."""
        return run_stale_window(
            worker,
            self.spec,
            models,
            count,
            self.shuffle,
            self.convergence_check,
            retry=self.retry,
            retry_stats=worker.retry_stats,
        )

    def merge(self, state, base):
        return self.aggregator.merge(state, base=base)

    def broadcast(self, models, state):
        return [models for _ in self.workers]

    def finish(self) -> None:
        if self.executor is not None:
            self.executor.shutdown(wait=True)


# ---------------------------------------------------------------------- #
# lockstep strategy (segment-axis tape; merge-based graphs)
# ---------------------------------------------------------------------- #
class _LockstepStep(EpochStep):
    """All segments advance in lock step through one segment-axis tape.

    State is the stacked ``(segments, ...)`` model block; between merge
    boundaries it simply keeps diverging per segment (that is
    stale-synchronous training).  The first epoch of a streaming run zips
    the per-segment batch streams — vector step ``k`` runs as soon as every
    segment's ``k``-th batch has decoded — and the epoch block of a
    ``shuffle=False`` run is planned once and reused every later epoch.
    """

    merges = True

    def __init__(
        self, sharded: ShardedDAnA, shuffle: bool, convergence_check: bool
    ) -> None:
        self.tape = sharded._segment_tape
        self.bind_batch = sharded.spec.bind_batch
        self.aggregator = sharded.aggregator
        self.shuffle = shuffle
        self.convergence_check = convergence_check
        self.retry = sharded.retry
        self.retry_stats = RetryStats()
        self.workers = [w for w in sharded.workers if w.has_rows()]
        self.batch_size = sharded.workers[0].engine.batch_size
        self.streaming = sharded.stream
        #: cached (epoch_rows, steps, block) of the static shuffle=False
        #: epoch — stacked once, reused every epoch (satellite: no
        #: re-trimming / re-stacking of identical blocks).
        self._static_plan: tuple[list[np.ndarray], int, np.ndarray | None] | None = None
        self._prefetched_rows: list[np.ndarray] | None = None

    @property
    def active(self) -> bool:
        return bool(self.workers)

    def begin(self, models):
        return self.broadcast(models, None)

    def broadcast(self, models, state):
        return {
            name: np.broadcast_to(
                np.asarray(value, dtype=np.float64),
                (len(self.workers),) + np.shape(value),
            ).copy()
            for name, value in models.items()
        }

    def merge(self, state, base):
        return self.aggregator.merge_stacked(state, base=base)

    def prefetch(self, epoch_index: int) -> None:
        """Prepare the next epoch's row orders while the merge overlaps.

        Consumes each segment's rng exactly once, in epoch order — the
        same stream a non-overlapped run would consume — so ``async_merge``
        stays bit-identical to ``bulk_synchronous``.
        """
        if self.workers and self._static_plan is None:
            self._prefetched_rows = [w.epoch_rows(self.shuffle) for w in self.workers]

    def run_window(self, state, epoch_index, count):
        """Run ``count`` merge-free epochs, judging convergence only on the
        window's last epoch — the merge boundary — exactly like the threads
        strategy's :meth:`_ThreadsStep._worker_window`, so the two
        strategies stay parity oracles under ``stale_synchronous`` too."""
        converged = False
        for offset in range(count):
            state, converged = self.run_epoch(
                state,
                epoch_index + offset,
                check_convergence=self.convergence_check and offset == count - 1,
            )
        return state, converged, count

    def run_epoch(self, state, epoch_index, check_convergence: bool | None = None):
        if self.retry is None:
            return self._run_epoch_attempt(state, epoch_index, check_convergence)
        # Checkpoint everything one lock-step epoch mutates: the stacked
        # model block (the tape updates it in place), every worker's
        # counters + RNG stream, and the prefetched row orders — so a
        # retried epoch replays bit-identically.
        snapshot = {name: np.array(value) for name, value in state.items()}
        worker_states = [w.checkpoint() for w in self.workers]
        prefetched = self._prefetched_rows

        def reset() -> None:
            for name, value in snapshot.items():
                np.copyto(state[name], value)
            for worker, saved in zip(self.workers, worker_states):
                worker.restore(saved)
            self._prefetched_rows = prefetched

        return self.retry.run(
            lambda: self._run_epoch_attempt(state, epoch_index, check_convergence),
            stats=self.retry_stats,
            reset=reset,
            label=f"lockstep epoch {epoch_index}",
        )

    def _run_epoch_attempt(
        self, state, epoch_index, check_convergence: bool | None = None
    ):
        workers = self.workers
        fault_point(SEGMENT_EPOCH_FAULT_SITE)
        if check_convergence is None:
            check_convergence = self.convergence_check
        if not workers:
            return state, False
        stacked_models = state
        tape, bind_batch, batch_size = self.tape, self.bind_batch, self.batch_size
        env = None
        if (
            epoch_index == 0
            and self.streaming
            and not self.shuffle
            and all(w.source is not None for w in workers)
        ):
            # Pipelined first epoch: zip the per-segment batch streams.
            # Vector step k runs as soon as every segment's k-th full batch
            # has decoded; the producers keep walking later pages meanwhile.
            steps, env = self._run_streamed_steps(stacked_models)
            epoch_rows = [w.epoch_rows(False) for w in workers]  # drains tails
        else:
            if self._static_plan is not None:
                epoch_rows, steps, block = self._static_plan
            else:
                epoch_rows = self._prefetched_rows or [
                    w.epoch_rows(self.shuffle) for w in workers
                ]
                steps = min(len(rows) // batch_size for rows in epoch_rows)
                block = (
                    np.stack(
                        [rows[: steps * batch_size] for rows in epoch_rows], axis=1
                    )
                    if steps
                    else None
                )
                if not self.shuffle:
                    self._static_plan = (epoch_rows, steps, block)
            self._prefetched_rows = None
            for k in range(steps):
                chunk = block[k * batch_size : (k + 1) * batch_size]
                env = tape.run(bind_batch(chunk), stacked_models)
                tape.apply_updates(env, stacked_models)
        for w in workers:
            w.engine.account_batches(batch_size, steps)
        # Per-segment convergence verdicts from the last vector step;
        # segments with tail batches get their verdict overwritten below
        # from their true final batch — exactly what the threads oracle
        # (one engine epoch per segment) reports.
        flags = np.zeros(len(workers), dtype=bool)
        if check_convergence and env is not None:
            value = tape.convergence_value(env)
            if value is not None:
                flags = np.broadcast_to(
                    np.atleast_1d(value) > 0.5, (len(workers),)
                ).copy()
        # Ragged tails (uneven partitions) run per segment through each
        # worker's own single-segment tape, so every tuple is consumed.
        for s, w in enumerate(workers):
            rows = epoch_rows[s]
            seg_tape = w.engine.tape
            seg_models = {name: stacked_models[name][s] for name in stacked_models}
            tail_env = None
            for start in range(steps * batch_size, len(rows), batch_size):
                batch = rows[start : start + batch_size]
                tail_env = seg_tape.run(bind_batch(batch), seg_models)
                seg_tape.apply_updates(tail_env, seg_models)
                w.engine.account_batch(len(batch))
            if tail_env is not None:
                for name in stacked_models:
                    stacked_models[name][s] = seg_models[name]
                if check_convergence:
                    flags[s] = seg_tape.convergence_reached(tail_env)
            w.engine.account_epoch_end()
            w.engine.stats.epochs_completed += 1
        converged = check_convergence and bool(flags.all())
        return stacked_models, converged

    def _run_streamed_steps(self, stacked_models) -> tuple[int, list | None]:
        """Vector steps over zipped per-segment streams; returns (steps, env).

        Stops at the first round where any segment cannot produce a full
        batch — exactly ``min(len(rows_s) // batch_size)`` rounds, the same
        step count the materialized plan computes.  Rows pulled past that
        point stay available (the sources cache their chunks), so the tail
        loop consumes them from ``rows[steps * batch_size:]`` as usual.
        """
        tape, bind_batch, batch_size = self.tape, self.bind_batch, self.batch_size
        iters = [w.source.batches(batch_size) for w in self.workers]
        steps = 0
        env = None
        while True:
            round_batches = []
            complete = True
            for it in iters:
                batch = next(it, None)
                if batch is None or len(batch) < batch_size:
                    complete = False
                    break
                round_batches.append(batch)
            if not complete:
                break
            chunk = np.stack(round_batches, axis=1)
            env = tape.run(bind_batch(chunk), stacked_models)
            tape.apply_updates(env, stacked_models)
            steps += 1
        return steps, env
