"""Sharded multi-segment execution: one DAnA accelerator per segment.

The paper's scale-out deployment (Figure 13) attaches one DAnA accelerator
to every Greenplum segment; each accelerator trains on its segment's slice
of the table and the per-segment models are combined every epoch — the
classic UDA ``transition``/``merge``/``final`` structure that MADlib-style
in-database analytics is built on.  :class:`ShardedDAnA` reproduces that
deployment functionally on top of the PR-1 batched pipeline:

* a :class:`~repro.cluster.partitioner.Partitioner` assigns heap pages to
  segments through the RDBMS catalog;
* every segment is a :class:`~repro.cluster.segment_worker.SegmentWorker`
  owning a full accelerator instance (its own Striders, execution engine,
  schedule-derived counters);
* per-segment models are combined each epoch by a
  :class:`~repro.cluster.aggregator.ModelAggregator`, whose cycle cost is
  booked on a cluster-level :class:`~repro.hw.tree_bus.TreeBus` — the
  software stand-in for the host-side merge the paper performs between
  FPGAs.

Two execution strategies produce identical per-segment counters:

* ``lockstep`` (default for merge-based graphs with 2+ segments) — all
  segments advance through their batch streams in lock step, and each step
  is evaluated by **one** segment-axis :class:`CompiledTape` run over a
  ``(B, S, ...)`` block.  This amortises the Python-side per-batch cost
  over the segment axis, so sharding speeds the simulation up even on a
  single core — and the NumPy kernels still release the GIL, so it scales
  further with real cores;
* ``threads`` — each segment trains its epoch independently on a thread
  pool (NumPy kernels drop the GIL).  This is the only strategy for
  row-addressed graphs (LRMF gathers cannot carry a segment axis) and the
  parity oracle for ``lockstep``.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.cluster.aggregator import ModelAggregator
from repro.cluster.partitioner import Partitioner
from repro.cluster.segment_worker import SegmentWorker
from repro.exceptions import ConfigurationError
from repro.hw.access_engine import AccessEngineStats
from repro.hw.accelerator import DAnAAccelerator
from repro.hw.execution_engine import EngineRunStats
from repro.hw.fpga import DEFAULT_FPGA, FPGASpec
from repro.hw.tree_bus import TreeBus, TreeBusStats
from repro.translator.hdfg import NodeKind
from repro.translator.tape import CompiledTape, TapeCompilationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.algorithms.base import AlgorithmSpec
    from repro.compiler.execution_binary import ExecutionBinary
    from repro.rdbms.database import Database

EXECUTION_STRATEGIES = ("auto", "lockstep", "threads")


@dataclass
class SegmentReport:
    """One segment's contribution to a sharded run."""

    segment_id: int
    pages: int
    tuples_extracted: int
    engine_stats: EngineRunStats
    access_stats: AccessEngineStats

    @property
    def cycles(self) -> int:
        """This segment's modelled path: AXI transfer + Striders + engine.

        The single definition of a segment's cycle cost — the run result
        and :mod:`repro.perf.segment_model` both derive their critical
        paths from it.
        """
        return (
            self.engine_stats.total_cycles
            + self.access_stats.strider_cycles_critical
            + self.access_stats.axi_cycles
        )


@dataclass
class ClusterStats:
    """Cross-segment activity of one sharded run."""

    segments: int
    mode: str
    partition_strategy: str
    aggregation_strategy: str
    epochs_run: int = 0
    merges_performed: int = 0
    tree_bus: TreeBusStats = field(default_factory=TreeBusStats)

    @property
    def cross_merge_cycles(self) -> int:
        return self.tree_bus.cycles


@dataclass
class ShardedRunResult:
    """Functional result + per-segment hardware activity of a sharded run."""

    models: dict[str, np.ndarray]
    epochs_run: int
    converged: bool
    segments: list[SegmentReport]
    cluster: ClusterStats

    # -- AcceleratorRunResult-compatible surface ------------------------ #
    @property
    def tuples_extracted(self) -> int:
        return sum(s.tuples_extracted for s in self.segments)

    @property
    def engine_stats(self) -> EngineRunStats:
        """Aggregate (summed) engine counters across segments."""
        total = EngineRunStats()
        for seg in self.segments:
            total.tuples_processed += seg.engine_stats.tuples_processed
            total.batches_processed += seg.engine_stats.batches_processed
            total.update_rule_cycles += seg.engine_stats.update_rule_cycles
            total.merge_cycles += seg.engine_stats.merge_cycles
            total.post_merge_cycles += seg.engine_stats.post_merge_cycles
            total.convergence_cycles += seg.engine_stats.convergence_cycles
        total.epochs_completed = self.epochs_run
        return total

    @property
    def access_stats(self) -> AccessEngineStats:
        """Aggregate access counters (critical path = slowest segment)."""
        total = AccessEngineStats()
        for seg in self.segments:
            total.pages_processed += seg.access_stats.pages_processed
            total.tuples_extracted += seg.access_stats.tuples_extracted
            total.bytes_transferred += seg.access_stats.bytes_transferred
            total.axi_cycles += seg.access_stats.axi_cycles
            total.strider_cycles_total += seg.access_stats.strider_cycles_total
            total.shifter_cycles += seg.access_stats.shifter_cycles
        if self.segments:
            total.strider_cycles_critical = max(
                seg.access_stats.strider_cycles_critical for seg in self.segments
            )
        return total

    @property
    def critical_path_cycles(self) -> int:
        """Modelled wall-clock cycles: slowest segment + cross-segment merge.

        Segments run concurrently (one accelerator each), so the epoch
        critical path is the slowest segment's engine + access time plus
        the serial cross-segment merge on the cluster tree bus.
        """
        if not self.segments:
            return self.cluster.cross_merge_cycles
        slowest = max(seg.cycles for seg in self.segments)
        return slowest + self.cluster.cross_merge_cycles


class ShardedDAnA:
    """Executes one compiled UDF across N per-segment DAnA accelerators."""

    def __init__(
        self,
        database: "Database",
        binary: "ExecutionBinary",
        spec: "AlgorithmSpec",
        segments: int,
        fpga: FPGASpec = DEFAULT_FPGA,
        partition_strategy: str = "round_robin",
        aggregation: str | None = None,
        execution: str = "auto",
        seed: int = 0,
        use_striders: bool = True,
    ) -> None:
        if segments < 1:
            raise ConfigurationError("a sharded run needs at least one segment")
        if execution not in EXECUTION_STRATEGIES:
            raise ConfigurationError(
                f"unknown execution strategy {execution!r}; "
                f"expected one of {EXECUTION_STRATEGIES}"
            )
        self.database = database
        self.binary = binary
        self.spec = spec
        self.segments = segments
        self.fpga = fpga
        self.seed = int(seed)
        self.use_striders = use_striders
        self.partitioner = Partitioner(partition_strategy, seed=seed)
        self._row_addressed = any(
            node.kind is NodeKind.GATHER for node in binary.graph.nodes()
        )
        self.aggregation_strategy = aggregation or (
            "gradient_sum" if self._row_addressed else "average"
        )
        ModelAggregator(self.aggregation_strategy)  # fail fast on bad strategy
        self.execution = execution
        #: workers of the most recent :meth:`train` call (for introspection).
        self.workers: list[SegmentWorker] = []
        # The segment-axis tape is compiled once per sharded run; graphs it
        # cannot carry (gathers) fall back to per-segment execution.
        self._segment_tape: CompiledTape | None = None
        if segments > 1 and spec.bind_batch is not None and execution != "threads":
            try:
                self._segment_tape = CompiledTape(binary.graph, segment_axis=True)
            except TapeCompilationError:
                self._segment_tape = None
        if execution == "lockstep" and self._segment_tape is None:
            raise ConfigurationError(
                "lockstep execution requires a merge-based graph with a batch "
                "binder and at least two segments"
            )

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    @property
    def mode(self) -> str:
        return "lockstep" if self._segment_tape is not None else "threads"

    def train(
        self,
        table_name: str,
        epochs: int,
        shuffle: bool = False,
        convergence_check: bool = True,
    ) -> ShardedRunResult:
        """Extract every partition, then run merge-synchronised epochs."""
        heapfile = self.database.table(table_name)
        pool = self.database.buffer_pool
        # One accelerator per segment, all generated from the same compiled
        # binary (same design, same Strider program, same schedule).  Fresh
        # instances per run keep per-segment counters clean, and re-deriving
        # the spawned seeds makes repeated runs bit-identical.  A single
        # segment draws from default_rng(seed) directly — the same stream
        # the single-engine path consumes — so segments=1 stays bit-exact
        # even with shuffle=True.
        if self.segments == 1:
            rngs = [np.random.default_rng(self.seed)]
        else:
            rngs = [
                np.random.default_rng(s)
                for s in np.random.SeedSequence(self.seed).spawn(self.segments)
            ]
        self.workers = [
            SegmentWorker(
                segment_id=i,
                accelerator=DAnAAccelerator(
                    binary=self.binary, schema=self.spec.schema, fpga=self.fpga
                ),
                partition=part,
                rng=rngs[i],
            )
            for i, part in enumerate(
                self.partitioner.partition_table(self.database, table_name, self.segments)
            )
        ]
        for worker in self.workers:
            worker.extract(heapfile, pool, use_striders=self.use_striders)
        models = {
            k: np.array(v, dtype=np.float64) for k, v in self.spec.initial_models.items()
        }
        # Fresh cluster bus + aggregator per run so counters describe this
        # run only (the aggregator books every cross-segment merge on it).
        self.cluster_bus = TreeBus(alu_count=self.binary.design.aus_per_cluster)
        self.aggregator = ModelAggregator(
            self.aggregation_strategy, tree_bus=self.cluster_bus
        )
        cluster = ClusterStats(
            segments=self.segments,
            mode=self.mode,
            partition_strategy=self.partitioner.strategy,
            aggregation_strategy=self.aggregator.strategy,
            tree_bus=self.cluster_bus.stats,
        )
        converged = False
        executor: ThreadPoolExecutor | None = None
        if self.mode == "lockstep":
            run_epoch = self._lockstep_runner(shuffle, convergence_check)
        else:
            max_workers = min(self.segments, max(1, os.cpu_count() or 1))
            active = sum(1 for w in self.workers if len(w.rows))
            if max_workers > 1 and active > 1:
                # NumPy kernels release the GIL, so per-segment epochs run
                # with real wall-clock overlap on multicore hosts; one
                # executor serves every epoch of the run.
                executor = ThreadPoolExecutor(max_workers=max_workers)
            run_epoch = self._threads_runner(shuffle, convergence_check, executor)
        has_rows = any(len(w.rows) for w in self.workers)
        try:
            for _epoch in range(epochs):
                models, epoch_converged = run_epoch(models)
                cluster.epochs_run += 1
                if has_rows:
                    cluster.merges_performed += 1
                if convergence_check and epoch_converged:
                    converged = True
                    break
        finally:
            if executor is not None:
                executor.shutdown(wait=True)
        reports = [
            SegmentReport(
                segment_id=w.segment_id,
                pages=len(w.partition),
                tuples_extracted=w.tuples_extracted,
                engine_stats=w.engine.stats,
                access_stats=w.access_stats,
            )
            for w in self.workers
        ]
        return ShardedRunResult(
            models=models,
            epochs_run=cluster.epochs_run,
            converged=converged,
            segments=reports,
            cluster=cluster,
        )

    # ------------------------------------------------------------------ #
    # threads strategy (per-segment engines on a pool; LRMF + oracle)
    # ------------------------------------------------------------------ #
    def _threads_runner(self, shuffle, convergence_check, executor):
        active = [w for w in self.workers if len(w.rows)]

        def run_epoch(models):
            if not active:
                return models, False
            if executor is not None:
                futures = [
                    executor.submit(
                        w.train_epoch, models, self.spec, shuffle, convergence_check
                    )
                    for w in active
                ]
                results = [f.result() for f in futures]
            else:
                results = [
                    w.train_epoch(models, self.spec, shuffle, convergence_check)
                    for w in active
                ]
            merged = self.aggregator.merge([r.models for r in results], base=models)
            return merged, all(r.converged for r in results)

        return run_epoch

    # ------------------------------------------------------------------ #
    # lockstep strategy (segment-axis tape; merge-based graphs)
    # ------------------------------------------------------------------ #
    def _lockstep_runner(self, shuffle, convergence_check):
        tape = self._segment_tape
        workers = [w for w in self.workers if len(w.rows)]
        batch_size = self.workers[0].engine.batch_size
        bind_batch = self.spec.bind_batch
        # Without shuffling the (steps*B, S, cols) block is identical every
        # epoch; stack it once instead of once per epoch.
        static_block: np.ndarray | None = None

        def run_epoch(models):
            nonlocal static_block
            if not workers:
                return models, False
            stacked_models = {
                name: np.broadcast_to(
                    np.asarray(value, dtype=np.float64), (len(workers),) + np.shape(value)
                ).copy()
                for name, value in models.items()
            }
            epoch_rows = [w.epoch_rows(shuffle) for w in workers]
            steps = min(len(rows) // batch_size for rows in epoch_rows)
            env = None
            if steps:
                if shuffle or static_block is None:
                    block = np.stack(
                        [rows[: steps * batch_size] for rows in epoch_rows], axis=1
                    )
                    if not shuffle:
                        static_block = block
                else:
                    block = static_block
                for k in range(steps):
                    chunk = block[k * batch_size : (k + 1) * batch_size]
                    env = tape.run(bind_batch(chunk), stacked_models)
                    tape.apply_updates(env, stacked_models)
                for w in workers:
                    w.engine.account_batches(batch_size, steps)
            # Per-segment convergence verdicts from the last vector step;
            # segments with tail batches get their verdict overwritten below
            # from their true final batch — exactly what the threads oracle
            # (one engine epoch per segment) reports.
            flags = np.zeros(len(workers), dtype=bool)
            if convergence_check and env is not None:
                value = tape.convergence_value(env)
                if value is not None:
                    flags = np.broadcast_to(
                        np.atleast_1d(value) > 0.5, (len(workers),)
                    ).copy()
            # Ragged tails (uneven partitions) run per segment through each
            # worker's own single-segment tape, so every tuple is consumed.
            for s, w in enumerate(workers):
                rows = epoch_rows[s]
                seg_tape = w.engine.tape
                seg_models = {name: stacked_models[name][s] for name in stacked_models}
                tail_env = None
                for start in range(steps * batch_size, len(rows), batch_size):
                    batch = rows[start : start + batch_size]
                    tail_env = seg_tape.run(bind_batch(batch), seg_models)
                    seg_tape.apply_updates(tail_env, seg_models)
                    w.engine.account_batch(len(batch))
                if tail_env is not None:
                    for name in stacked_models:
                        stacked_models[name][s] = seg_models[name]
                    if convergence_check:
                        flags[s] = seg_tape.convergence_reached(tail_env)
                w.engine.account_epoch_end()
                w.engine.stats.epochs_completed += 1
            converged = convergence_check and bool(flags.all())
            merged = self.aggregator.merge_stacked(stacked_models, base=models)
            return merged, converged

        return run_epoch
