"""Sharded multi-segment execution: one DAnA accelerator per segment.

The functional counterpart of the paper's Greenplum deployment (Figure 13):
heap pages are partitioned across segments, each segment runs its own
Strider page walk and execution engine, and per-segment models are merged
every epoch on a cluster-level tree bus.
"""

from repro.cluster.aggregator import AGGREGATION_STRATEGIES, ModelAggregator
from repro.cluster.partitioner import (
    PARTITION_STRATEGIES,
    PagePartition,
    Partitioner,
)
from repro.cluster.process_pool import (
    IPCStats,
    ProcessSegmentPool,
    ProcessSegmentWorker,
    SegmentTask,
)
from repro.cluster.segment_worker import SegmentWorker
from repro.cluster.sharded import (
    ClusterStats,
    EXECUTION_STRATEGIES,
    SegmentReport,
    ShardedDAnA,
    ShardedRunResult,
)

__all__ = [
    "AGGREGATION_STRATEGIES",
    "ClusterStats",
    "EXECUTION_STRATEGIES",
    "IPCStats",
    "ModelAggregator",
    "PARTITION_STRATEGIES",
    "PagePartition",
    "Partitioner",
    "ProcessSegmentPool",
    "ProcessSegmentWorker",
    "SegmentReport",
    "SegmentTask",
    "SegmentWorker",
    "ShardedDAnA",
    "ShardedRunResult",
]
