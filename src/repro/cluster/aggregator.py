"""Cross-segment model merging (the UDA ``merge``/``final`` stage).

After every training epoch each segment holds its own partial model; the
aggregator combines them into the next epoch's global model.  Two
strategies cover the algorithms in the paper:

* ``average`` — plain model averaging, the classic MADlib/Greenplum UDA
  merge for the convex gradient-descent algorithms (linear/logistic/SVM);
* ``gradient_sum`` — treats each segment's model as ``base + delta`` and
  sums the deltas onto the shared base.  This is the right combination for
  row-addressed (gathered) models such as LRMF's factor matrices: page
  partitions touch mostly-disjoint factor rows, so summing displacements
  applies every segment's rows while leaving untouched rows exactly at the
  base value (averaging would shrink every update by ``1/segments``).

The aggregator is the *single* merge implementation in the repo: the
functional :class:`~repro.baselines.greenplum.GreenplumRunner` baseline and
the sharded DAnA subsystem both consume it, so the two paths cannot drift.
When a :class:`~repro.hw.tree_bus.TreeBus` is attached, every merge books
its cycle cost on the bus — combining ``S`` segment models of ``E``
elements costs ``ceil(log2(S))`` levels, exactly like the intra-engine
thread merge.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.hw.tree_bus import TreeBus
from repro.obs.telemetry import telemetry

AGGREGATION_STRATEGIES = ("average", "gradient_sum")

Models = dict[str, np.ndarray]


class ModelAggregator:
    """Combines per-segment models into one global model per epoch."""

    def __init__(self, strategy: str = "average", tree_bus: TreeBus | None = None) -> None:
        if strategy not in AGGREGATION_STRATEGIES:
            raise ConfigurationError(
                f"unknown aggregation strategy {strategy!r}; "
                f"expected one of {AGGREGATION_STRATEGIES}"
            )
        self.strategy = strategy
        self.tree_bus = tree_bus

    # ------------------------------------------------------------------ #
    # merging
    # ------------------------------------------------------------------ #
    def merge(
        self,
        segment_models: Sequence[Mapping[str, np.ndarray]],
        base: Mapping[str, np.ndarray] | None = None,
    ) -> Models:
        """Merge a list of per-segment model dicts.

        ``base`` is the epoch-start global model; it is required by the
        ``gradient_sum`` strategy (the value the deltas are measured from).
        """
        if not segment_models:
            raise ConfigurationError("cannot merge an empty set of segment models")
        obs = telemetry()
        span = (
            obs.span("cluster.segment.merge", segments=len(segment_models))
            if obs is not None
            else None
        )
        merged: Models = {}
        for name in segment_models[0]:
            stacked = np.stack(
                [np.asarray(m[name], dtype=np.float64) for m in segment_models]
            )
            merged[name] = self._combine(name, stacked, base)
        if span is not None:
            obs.finish(span, params=len(merged))
        return merged

    def merge_stacked(
        self,
        stacked_models: Mapping[str, np.ndarray],
        base: Mapping[str, np.ndarray] | None = None,
    ) -> Models:
        """Merge models already stacked on a leading segment axis.

        This is the zero-copy entry point for the lock-step executor, which
        keeps every model as one ``(segments, ...)`` array.
        """
        obs = telemetry()
        span = (
            obs.span("cluster.segment.merge", stacked=True)
            if obs is not None
            else None
        )
        merged = {
            name: self._combine(name, np.asarray(value, dtype=np.float64), base)
            for name, value in stacked_models.items()
        }
        if span is not None:
            obs.finish(span, params=len(merged))
        return merged

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _combine(
        self,
        name: str,
        stacked: np.ndarray,
        base: Mapping[str, np.ndarray] | None,
    ) -> np.ndarray:
        segments = stacked.shape[0]
        self._account(segments, int(np.prod(stacked.shape[1:], dtype=np.int64)))
        if segments == 1:
            # One segment: the merge is the identity (and must be *bitwise*
            # the identity, so segments=1 reproduces the single-engine path
            # exactly under either strategy).
            return np.array(stacked[0], dtype=np.float64)
        if self.strategy == "average":
            return np.mean(stacked, axis=0)
        if base is None or name not in base:
            raise ConfigurationError(
                "gradient_sum aggregation needs the epoch-start base model"
            )
        base_value = np.asarray(base[name], dtype=np.float64)
        return base_value + np.sum(stacked - base_value, axis=0)

    def _account(self, segments: int, element_count: int) -> None:
        if self.tree_bus is not None and segments >= 1 and element_count > 0:
            self.tree_bus.account_merge(segments, element_count)
