"""One segment's slice of a sharded run: its own DAnA accelerator.

The paper's Greenplum deployment attaches one DAnA accelerator to every
segment; a :class:`SegmentWorker` is that pairing in the reproduction.  It
owns a full :class:`~repro.hw.accelerator.DAnAAccelerator` instance
(access engine with its own Striders + execution engine with its own
thread schedule and tree bus), streams only its partition's heap pages,
and trains one epoch at a time from whatever global model the cross-segment
merge produced — so per-segment hardware counters are exactly what a
stand-alone accelerator over the same pages would report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.partitioner import PagePartition
from repro.hw.accelerator import DAnAAccelerator
from repro.hw.execution_engine import TrainingResult
from repro.rdbms.buffer_pool import BufferPool
from repro.rdbms.heapfile import HeapFile

from repro.algorithms.base import AlgorithmSpec


@dataclass
class SegmentWorker:
    """One segment: a page partition bound to its own accelerator."""

    segment_id: int
    accelerator: DAnAAccelerator
    partition: PagePartition
    rng: np.random.Generator | None = None
    rows: np.ndarray | None = field(default=None, repr=False)

    @property
    def engine(self):
        return self.accelerator.execution_engine

    @property
    def access_stats(self):
        return self.accelerator.access_engine.stats

    @property
    def tuples_extracted(self) -> int:
        return 0 if self.rows is None else len(self.rows)

    # ------------------------------------------------------------------ #
    # access engine: partition extraction
    # ------------------------------------------------------------------ #
    def extract(
        self, heapfile: HeapFile, pool: BufferPool, use_striders: bool = True
    ) -> np.ndarray:
        """Materialise this segment's pages as the training-tuple matrix.

        ``use_striders=True`` streams the raw page images through this
        segment's access engine (the paper's path, with cycle accounting);
        ``False`` models the CPU feeding the engine directly — the tuples
        are decoded by the RDBMS layer and no Strider activity is booked.
        """
        if use_striders:
            images = (
                image
                for _no, image in heapfile.scan_pages(pool, self.partition.page_nos)
            )
            self.rows = self.accelerator.access_engine.extract_table(images)
            return self.rows
        from repro.rdbms.page import HeapPage

        tuples: list[tuple] = []
        for _no, image in heapfile.scan_pages(pool, self.partition.page_nos):
            page = HeapPage.from_bytes(image, heapfile.layout)
            tuples.extend(page.tuples(heapfile.schema))
        self.rows = (
            np.asarray(tuples, dtype=np.float64)
            if tuples
            else np.empty((0, len(heapfile.schema)))
        )
        return self.rows

    def epoch_rows(self, shuffle: bool) -> np.ndarray:
        """This epoch's tuple order (per-segment seeded shuffle)."""
        assert self.rows is not None, "extract() must run before training"
        if not shuffle or len(self.rows) == 0:
            return self.rows
        if self.rng is None:
            # Materialise the fallback generator once so its stream advances
            # across epochs (a fresh rng per call would replay one
            # permutation forever).
            self.rng = np.random.default_rng(0)
        order = np.arange(len(self.rows))
        self.rng.shuffle(order)
        return self.rows[order]

    # ------------------------------------------------------------------ #
    # execution engine: one epoch from the merged global model
    # ------------------------------------------------------------------ #
    def train_epoch(
        self,
        models: dict[str, np.ndarray],
        spec: AlgorithmSpec,
        shuffle: bool = False,
        convergence_check: bool = True,
    ) -> TrainingResult:
        """Run one local epoch starting from the merged global model."""
        assert self.rows is not None, "extract() must run before training"
        return self.engine.train(
            rows=self.rows,
            initial_models=models,
            bind_tuple=spec.bind_tuple,
            epochs=1,
            convergence_check=convergence_check,
            bind_batch=spec.bind_batch,
            shuffle=shuffle,
            rng=self.rng,
        )
