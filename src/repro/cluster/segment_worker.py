"""One segment's slice of a sharded run: its own DAnA accelerator.

The paper's Greenplum deployment attaches one DAnA accelerator to every
segment; a :class:`SegmentWorker` is that pairing in the reproduction.  It
owns a full :class:`~repro.hw.accelerator.DAnAAccelerator` instance
(access engine with its own Striders + execution engine with its own
thread schedule and tree bus), streams only its partition's heap pages,
and trains one or more epochs at a time from whatever global model the
cross-segment merge produced — so per-segment hardware counters are
exactly what a stand-alone accelerator over the same pages would report.

Extraction comes in two flavours: :meth:`extract` materialises the whole
partition up front (the PR-2 behaviour, kept as the pipelining oracle),
while :meth:`open_source` starts a streaming
:class:`~repro.runtime.BatchSource` whose producer thread runs this
segment's Strider walk concurrently with training — and concurrently with
every *other* segment's extraction.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.partitioner import PagePartition
from repro.hw.accelerator import DAnAAccelerator
from repro.hw.execution_engine import TrainingResult
from repro.obs.telemetry import telemetry
from repro.rdbms.buffer_pool import BufferPool
from repro.rdbms.heapfile import HeapFile
from repro.reliability.faults import fault_point
from repro.reliability.retry import RetryPolicy, RetryStats
from repro.runtime import BatchSource

from repro.algorithms.base import AlgorithmSpec

#: fault-injection site fired once per segment training window.
SEGMENT_EPOCH_FAULT_SITE = "cluster.segment_worker.epoch"


def run_stale_window(
    worker: "SegmentWorker",
    spec: AlgorithmSpec,
    models: dict[str, np.ndarray],
    count: int,
    shuffle: bool,
    convergence_check: bool,
    retry: RetryPolicy | None = None,
    retry_stats: RetryStats | None = None,
) -> TrainingResult:
    """One stale-synchronous window of ``count`` local epochs on ``worker``.

    Convergence is judged only at the merge boundary (the window's last
    epoch): the merge-free prefix runs without an early exit so every
    segment trains exactly ``count`` epochs per window — no segment can
    stop mid-window and smuggle a less-trained model into the merge.  This
    is the single definition both the thread-pool strategy and the worker
    *processes* execute, which is what keeps the two bit-identical.
    """
    if count > 1 and convergence_check:
        prefix = worker.train_epochs(
            models,
            spec,
            count - 1,
            shuffle,
            convergence_check=False,
            retry=retry,
            retry_stats=retry_stats,
        )
        boundary = worker.train_epochs(
            prefix.models,
            spec,
            1,
            shuffle,
            convergence_check,
            retry=retry,
            retry_stats=retry_stats,
        )
        return TrainingResult(
            models=boundary.models,
            epochs_run=prefix.epochs_run + boundary.epochs_run,
            converged=boundary.converged,
            stats=boundary.stats,
        )
    return worker.train_epochs(
        models,
        spec,
        count,
        shuffle,
        convergence_check,
        retry=retry,
        retry_stats=retry_stats,
    )


@dataclass
class SegmentWorker:
    """One segment: a page partition bound to its own accelerator."""

    segment_id: int
    accelerator: DAnAAccelerator
    partition: PagePartition
    rng: np.random.Generator | None = None
    source: BatchSource | None = field(default=None, repr=False)
    #: fault/retry counters booked by this worker's retried windows.
    retry_stats: RetryStats = field(default_factory=RetryStats, repr=False)
    _rows: np.ndarray | None = field(default=None, repr=False)

    @property
    def engine(self):
        return self.accelerator.execution_engine

    @property
    def access_stats(self):
        return self.accelerator.access_engine.stats

    @property
    def rows(self) -> np.ndarray | None:
        """The partition's tuple matrix (drains the stream if needed)."""
        if self._rows is None and self.source is not None:
            self._rows = self.source.rows()
        return self._rows

    @property
    def tuples_extracted(self) -> int:
        if self._rows is None and self.source is None:
            return 0
        return len(self.rows)

    def has_rows(self) -> bool:
        """True once the partition is known to hold at least one tuple.

        On a streaming source this peeks only as far as the first decoded
        page — the whole partition is *not* materialised.
        """
        if self._rows is not None:
            return len(self._rows) > 0
        if self.source is not None:
            return self.source.has_rows()
        return False

    # ------------------------------------------------------------------ #
    # access engine: partition extraction
    # ------------------------------------------------------------------ #
    def _page_images(
        self,
        heapfile: HeapFile,
        pool: BufferPool,
        as_of_lsn: int | None = None,
    ) -> list[bytes]:
        # The buffer pool is not thread-safe; images are pulled on the
        # caller's thread so producer threads only run Strider/decode work.
        # Pulling up front is also what pins the run to its snapshot: with
        # as_of_lsn set, these are the bytes the heap held at that LSN, and
        # concurrent inserts cannot reach the producer or the chunk cache.
        return [
            image
            for _no, image in heapfile.scan_pages(
                pool, self.partition.page_nos, as_of_lsn=as_of_lsn
            )
        ]

    def extract(
        self,
        heapfile: HeapFile,
        pool: BufferPool,
        use_striders: bool = True,
        as_of_lsn: int | None = None,
    ) -> np.ndarray:
        """Materialise this segment's pages as the training-tuple matrix.

        ``use_striders=True`` streams the raw page images through this
        segment's access engine (the paper's path, with cycle accounting);
        ``False`` models the CPU feeding the engine directly — the tuples
        are decoded by the RDBMS layer and no Strider activity is booked.
        ``as_of_lsn`` pins the page pulls to a snapshot of the heap.
        """
        if use_striders:
            self._rows = self.accelerator.access_engine.extract_table(
                self._page_images(heapfile, pool, as_of_lsn=as_of_lsn)
            )
            return self._rows
        chunks = list(self._cpu_decode_chunks(heapfile, pool, as_of_lsn=as_of_lsn))
        self._rows = (
            np.vstack(chunks) if chunks else np.empty((0, len(heapfile.schema)))
        )
        return self._rows

    def extract_pages(
        self,
        page_images,
        use_striders: bool = True,
        layout=None,
        schema=None,
    ) -> np.ndarray:
        """Materialise the partition from already-pulled page images.

        Worker *processes* use this: their pages come as zero-copy views
        of a :class:`~repro.runtime.shm.SharedPageStore` rather than from
        a heap file + buffer pool, and the Strider bulk walk (or the
        ``use_striders=False`` RDBMS decode, which needs ``layout`` and
        ``schema``) runs over them unchanged.
        """
        if use_striders:
            self._rows = self.accelerator.access_engine.extract_table(page_images)
            return self._rows
        from repro.rdbms.heapfile import decode_page_rows

        chunks = [decode_page_rows(image, layout, schema) for image in page_images]
        self._rows = np.vstack(chunks) if chunks else np.empty((0, len(schema)))
        return self._rows

    def open_source(
        self,
        heapfile: HeapFile,
        pool: BufferPool,
        use_striders: bool = True,
        queue_depth: int = 2,
        retry: RetryPolicy | None = None,
        as_of_lsn: int | None = None,
    ) -> BatchSource:
        """Start this segment's streaming extraction (producer thread).

        The returned source yields decoded per-page chunks through a
        bounded double buffer; training can consume the first batch while
        later pages are still being cleansed.  Payloads and counters are
        identical to :meth:`extract`.  A ``retry`` policy makes the
        producer restartable after transient faults (page walk or
        producer site) with bit-identical chunks and counters.
        ``as_of_lsn`` pins the page pulls to a snapshot, so a producer
        restart (and the source's chunk cache) re-walks the same images
        even if the table has grown since the stream opened.
        """
        if use_striders:
            self.source = self.accelerator.access_engine.stream_table(
                self._page_images(heapfile, pool, as_of_lsn=as_of_lsn),
                queue_depth=queue_depth,
                retry=retry,
            )
        else:
            self.source = BatchSource(
                self._cpu_decode_chunks(heapfile, pool, as_of_lsn=as_of_lsn),
                n_columns=len(heapfile.schema),
                queue_depth=queue_depth,
            )
        return self.source

    def _cpu_decode_chunks(
        self,
        heapfile: HeapFile,
        pool: BufferPool,
        as_of_lsn: int | None = None,
    ):
        """Per-page RDBMS-side decode (the ``use_striders=False`` model)."""
        from repro.rdbms.heapfile import decode_page_rows

        schema, layout = heapfile.schema, heapfile.layout
        images = self._page_images(heapfile, pool, as_of_lsn=as_of_lsn)
        return (decode_page_rows(image, layout, schema) for image in images)

    def epoch_rows(self, shuffle: bool) -> np.ndarray:
        """This epoch's tuple order (per-segment seeded shuffle)."""
        rows = self.rows
        assert rows is not None, "extract()/open_source() must run before training"
        if not shuffle or len(rows) == 0:
            return rows
        if self.rng is None:
            # Materialise the fallback generator once so its stream advances
            # across epochs (a fresh rng per call would replay one
            # permutation forever).
            self.rng = np.random.default_rng(0)
        order = np.arange(len(rows))
        self.rng.shuffle(order)
        return rows[order]

    # ------------------------------------------------------------------ #
    # execution engine: local epochs from the merged global model
    # ------------------------------------------------------------------ #
    def train_epoch(
        self,
        models: dict[str, np.ndarray],
        spec: AlgorithmSpec,
        shuffle: bool = False,
        convergence_check: bool = True,
    ) -> TrainingResult:
        """Run one local epoch starting from the merged global model."""
        return self.train_epochs(models, spec, 1, shuffle, convergence_check)

    def train_epochs(
        self,
        models: dict[str, np.ndarray],
        spec: AlgorithmSpec,
        epochs: int,
        shuffle: bool = False,
        convergence_check: bool = True,
        retry: RetryPolicy | None = None,
        retry_stats: RetryStats | None = None,
    ) -> TrainingResult:
        """Run ``epochs`` local epochs (one stale-synchronous window).

        When the partition is still streaming, the first epoch consumes
        batches straight off the source; the stream is materialised before
        the call returns so later windows train from memory.

        With a ``retry`` policy, a :class:`~repro.exceptions.TransientError`
        raised by this window is retried from a checkpoint of the worker's
        engine/tree-bus counters and RNG state — so the successful attempt
        books exactly what a fault-free window would have (the epoch driver
        copies the input models per attempt, so they need no restore).
        """
        assert self._rows is not None or self.source is not None, (
            "extract()/open_source() must run before training"
        )

        def window() -> TrainingResult:
            fault_point(SEGMENT_EPOCH_FAULT_SITE)
            obs = telemetry()
            span = (
                obs.span(
                    "cluster.segment.train", segment=self.segment_id, epochs=epochs
                )
                if obs is not None
                else None
            )
            result = self.engine.train(
                rows=self._rows,
                initial_models=models,
                bind_tuple=spec.bind_tuple,
                epochs=epochs,
                convergence_check=convergence_check,
                bind_batch=spec.bind_batch,
                shuffle=shuffle,
                rng=self.rng,
                source=self.source if self._rows is None else None,
            )
            if self._rows is None:
                self._rows = self.source.rows()
            if span is not None:
                obs.finish(span, epochs_run=result.epochs_run)
            return result

        if retry is None:
            return window()
        checkpoint = self.checkpoint()
        return retry.run(
            window,
            stats=retry_stats,
            reset=lambda: self.restore(checkpoint),
            label=f"segment {self.segment_id} training window",
        )

    # ------------------------------------------------------------------ #
    # retry checkpointing
    # ------------------------------------------------------------------ #
    def checkpoint(self) -> dict:
        """Snapshot the counters/RNG state a retried window must restore."""
        state = {
            "engine_stats": copy.copy(self.engine.stats),
            "bus_stats": copy.copy(self.engine.tree_bus.stats),
            "rng_state": (
                copy.deepcopy(self.rng.bit_generator.state)
                if self.rng is not None
                else None
            ),
        }
        return state

    def restore(self, state: dict) -> None:
        """Roll the worker back to a :meth:`checkpoint` before a re-attempt.

        Counter objects are restored **in place** (results hold references
        to them); the RNG stream rewinds so a retried shuffle replays the
        exact permutations of the failed attempt.
        """
        self.engine.stats.__dict__.update(state["engine_stats"].__dict__)
        self.engine.tree_bus.stats.__dict__.update(state["bus_stats"].__dict__)
        if state["rng_state"] is not None and self.rng is not None:
            self.rng.bit_generator.state = copy.deepcopy(state["rng_state"])
