"""Heap-page partitioning across segments (Greenplum-style distribution).

Greenplum distributes a table's tuples across segments at load time; each
segment's MADlib instance (or, in the paper's deployment, its attached DAnA
accelerator) then trains on its local slice.  The reproduction keeps one
heap file per table, so distribution happens at *page* granularity instead:
the :class:`Partitioner` assigns every heap page of a table to exactly one
segment, and each :class:`~repro.cluster.segment_worker.SegmentWorker`
streams only its own pages through its own Strider-based access engine.

Two strategies are provided:

* ``round_robin`` — page ``i`` goes to segment ``i % segments``; partitions
  differ in size by at most one page and preserve storage order inside a
  segment (the default, and what Greenplum's ``DISTRIBUTED RANDOMLY``
  degenerates to for a bulk-loaded table);
* ``hash`` — a seeded multiplicative hash of the page number (Knuth's
  2654435761 constant) picks the segment, modelling hash distribution on a
  synthetic distribution key.

Both strategies are pure functions of ``(page_count, segments, seed)``, so
a fixed seed makes the whole sharded run reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.exceptions import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.rdbms.database import Database

#: Knuth's multiplicative hashing constant (golden ratio of 2**32).
_KNUTH_MIX = 2654435761
_HASH_MOD = 1 << 32

PARTITION_STRATEGIES = ("round_robin", "hash")


@dataclass(frozen=True)
class PagePartition:
    """The heap pages one segment owns."""

    segment_id: int
    page_nos: tuple[int, ...]

    def __len__(self) -> int:
        return len(self.page_nos)


class Partitioner:
    """Deterministically assigns a table's heap pages to segments."""

    def __init__(self, strategy: str = "round_robin", seed: int = 0) -> None:
        if strategy not in PARTITION_STRATEGIES:
            raise ConfigurationError(
                f"unknown partition strategy {strategy!r}; "
                f"expected one of {PARTITION_STRATEGIES}"
            )
        self.strategy = strategy
        self.seed = int(seed)

    def partition(self, page_count: int, segments: int) -> list[PagePartition]:
        """Split ``page_count`` heap pages into ``segments`` partitions."""
        if segments < 1:
            raise ConfigurationError("a sharded run needs at least one segment")
        if page_count < 0:
            raise ConfigurationError("page_count cannot be negative")
        assignments: list[list[int]] = [[] for _ in range(segments)]
        if self.strategy == "round_robin":
            for page_no in range(page_count):
                assignments[page_no % segments].append(page_no)
        else:  # hash
            for page_no in range(page_count):
                mixed = ((page_no + 1) * _KNUTH_MIX + self.seed) % _HASH_MOD
                assignments[mixed % segments].append(page_no)
        return [
            PagePartition(segment_id=i, page_nos=tuple(pages))
            for i, pages in enumerate(assignments)
        ]

    def partition_table(
        self,
        database: "Database",
        table_name: str,
        segments: int,
        as_of_lsn: int | None = None,
    ) -> list[PagePartition]:
        """Partition a catalogued table's heap pages across segments.

        ``as_of_lsn`` partitions the page set a snapshot scan will walk
        (pages that existed at that LSN) instead of the live heap, so a
        sharded run started at LSN ``s`` never assigns pages appended by
        concurrent inserts.
        """
        entry = database.catalog.table(table_name)  # raises for unknown tables
        if as_of_lsn is None:
            page_count = database.storage.page_count(entry.file_name)
        else:
            page_count = database.table(table_name).page_count_as_of(as_of_lsn)
        return self.partition(page_count, segments)
