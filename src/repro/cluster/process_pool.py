"""Process-parallel segment execution over shared-memory heap pages.

Threads-mode sharding (:class:`~repro.cluster.sharded.ShardedDAnA` with
``execution="threads"``) overlaps segments only where NumPy drops the GIL;
``execution="processes"`` promotes every segment to a real OS process so
the per-segment training windows overlap on real cores.  The design:

* the parent exports the table's heap pages **once** into a
  :class:`~repro.runtime.shm.SharedPageStore`; children attach and run the
  unchanged Strider bulk walk over zero-copy page views;
* each child rebuilds its accelerator from a **pickle-safe**
  :class:`SegmentTask` descriptor (algorithm registry key + hyperparameters
  + page layout + FPGA spec + page numbers + the seeded
  ``SeedSequence`` recipe) — live accelerator objects are never pickled;
* per window, the parent ships the merged global model down and the child
  ships back its updated model plus *all* of its counters (engine, tree
  bus, access engine/Striders, shared-store page I/O, retry, RNG state,
  telemetry export), so the parent's
  :class:`~repro.cluster.aggregator.ModelAggregator` merge, the cluster
  :meth:`~repro.hw.tree_bus.TreeBus.account_merge` booking, and the run
  reports are exactly those of a threads-mode run;
* a dead worker process surfaces as a
  :class:`~repro.exceptions.TransientError` at the parent's dispatch for
  the ``cluster.segment_worker.epoch`` site, so an ordinary
  :class:`~repro.reliability.RetryPolicy` respawns the worker from its
  last per-window checkpoint — bit-identical recovery.

Everything is keyed to the **spawn** start method: children import the
library fresh (fork would duplicate locks, buffer pools and armed
telemetry), which is also why the descriptors must be picklable.
"""

from __future__ import annotations

import copy
import multiprocessing
import os
import pickle
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.algorithms.base import Hyperparameters
from repro.algorithms.registry import get_algorithm
from repro.cluster.partitioner import PagePartition
from repro.cluster.segment_worker import SegmentWorker, run_stale_window
from repro.exceptions import (
    ConfigurationError,
    RetryExhaustedError,
    TransientError,
)
from repro.hw.access_engine import AccessEngineStats
from repro.hw.accelerator import DAnAAccelerator
from repro.hw.execution_engine import EngineRunStats
from repro.hw.fpga import FPGASpec
from repro.hw.tree_bus import TreeBusStats
from repro.obs.telemetry import Telemetry, enable_telemetry, telemetry
from repro.rdbms.page import PageLayout
from repro.rdbms.storage import StorageStats
from repro.reliability.faults import FaultPlan, active_injector, inject_faults
from repro.reliability.retry import RetryPolicy, RetryStats
from repro.runtime.shm import SharedPageStore, SharedPageStoreHandle

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.algorithms.base import AlgorithmSpec
    from repro.compiler.execution_binary import ExecutionBinary

#: join grace before a worker process is forcibly terminated, seconds.
SHUTDOWN_GRACE_S = 5.0


@dataclass
class IPCStats:
    """Measured parent<->worker IPC volume of one process-parallel run."""

    #: pickled bytes shipped across the command/reply pipes, both ways.
    bytes_shipped: int = 0
    #: command/reply round trips (one per worker per window + handshakes).
    round_trips: int = 0

    def merge(self, other: "IPCStats") -> None:
        """Accumulate another run's counters into this one."""
        self.bytes_shipped += other.bytes_shipped
        self.round_trips += other.round_trips


@dataclass(frozen=True)
class ChaosConfig:
    """Fault plan shipped into worker processes (with resume offsets)."""

    plan: FaultPlan
    offsets: dict[str, int] | None = None


@dataclass(frozen=True)
class SegmentTask:
    """Pickle-safe description of one segment's training duties.

    Carries everything a spawned child needs to rebuild the segment's
    accelerator deterministically — never live objects.
    """

    segment_id: int
    udf_name: str
    #: algorithm registry key (``spec.name``); the child rebuilds the spec
    #: via :func:`~repro.algorithms.registry.get_algorithm`.
    algorithm: str
    n_features: int
    model_topology: tuple[int, ...]
    hyperparameters: Hyperparameters
    layout: PageLayout
    fpga: FPGASpec
    #: table tuple count the hardware generator sized the design for.
    n_tuples: int
    page_nos: tuple[int, ...]
    #: (seed, segments, segment_id) is the exact ``SeedSequence`` spawn
    #: recipe the in-process strategies use, so shuffles stay bit-identical.
    seed: int
    segments: int
    use_striders: bool
    shuffle: bool
    retry: RetryPolicy | None = None


@dataclass(frozen=True)
class ScoreTask:
    """Pickle-safe description of one segment's scan-and-score duties."""

    segment_id: int
    udf_name: str
    algorithm: str
    n_features: int
    model_topology: tuple[int, ...]
    hyperparameters: Hyperparameters
    layout: PageLayout
    fpga: FPGASpec
    n_tuples: int
    page_nos: tuple[int, ...]
    use_striders: bool
    path: str
    batch_size: int | None
    stream: bool


def builder_metadata(spec: "AlgorithmSpec") -> dict:
    """The spec's rebuild recipe, or raise when it cannot cross a process.

    Specs built by the algorithm registry carry
    ``metadata["builder"] = {"algorithm", "n_features", "model_topology"}``;
    hand-written DSL specs do not, and cannot be rebuilt inside a spawned
    worker (their binders are closures, which do not pickle).
    """
    builder = spec.metadata.get("builder") if spec.metadata else None
    if not builder:
        raise ConfigurationError(
            f"algorithm spec {spec.name!r} carries no builder metadata; "
            'execution="processes" needs a registry-built spec '
            "(register_algorithm_udf) so worker processes can rebuild it"
        )
    return builder


def rebuild_spec_and_binary(
    algorithm: str,
    n_features: int,
    hyperparameters: Hyperparameters,
    model_topology: tuple[int, ...],
    udf_name: str,
    layout: PageLayout,
    fpga: FPGASpec,
    n_tuples: int,
) -> tuple["AlgorithmSpec", "ExecutionBinary"]:
    """Recompile a UDF inside a worker process, exactly like the facade.

    Mirrors :meth:`repro.core.DAnA.compile_udf` step for step (translate →
    hardware generation → static schedule → binary), so the child's design,
    Strider program and thread schedule — and therefore every
    schedule-derived counter — are identical to the parent's.
    """
    from repro.compiler import ExecutionBinary, HardwareGenerator, Scheduler
    from repro.translator import translate

    spec = get_algorithm(algorithm).build_spec(
        n_features, hyperparameters, model_topology
    )
    graph = translate(spec.algo)
    generator = HardwareGenerator(
        graph,
        layout,
        spec.schema,
        fpga,
        merge_coefficient=spec.algo.merge_coefficient,
        n_tuples=max(1, int(n_tuples)),
    )
    design = generator.generate()
    schedule = Scheduler(graph, design.acs_per_thread).schedule()
    binary = ExecutionBinary.build(
        udf_name=udf_name,
        algorithm=spec.name,
        design=design,
        strider=generator.strider_compilation,
        thread_schedule=schedule,
        graph=graph,
        metadata={"process_worker": True},
    )
    return spec, binary


def segment_rng(seed: int, segments: int, segment_id: int) -> np.random.Generator:
    """The exact per-segment generator the in-process strategies build."""
    if segments == 1:
        return np.random.default_rng(seed)
    return np.random.default_rng(
        np.random.SeedSequence(seed).spawn(segments)[segment_id]
    )


# ---------------------------------------------------------------------- #
# pipe protocol (pickle once, measure exactly)
# ---------------------------------------------------------------------- #
def _send_msg(conn, obj) -> int:
    data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    conn.send_bytes(data)
    return len(data)


def _recv_msg(conn) -> tuple[object, int]:
    data = conn.recv_bytes()
    return pickle.loads(data), len(data)


def _safe_send(conn, obj) -> None:
    try:
        _send_msg(conn, obj)
    except (BrokenPipeError, OSError):  # parent already gone
        pass
    except Exception:
        # unpicklable exception payload: degrade to its repr
        try:
            _send_msg(conn, ("raise", RuntimeError(repr(obj))))
        except Exception:
            pass


# ---------------------------------------------------------------------- #
# worker-process mains (module-level: spawn targets must pickle)
# ---------------------------------------------------------------------- #
def _restore_worker(worker: SegmentWorker, resume: dict) -> None:
    """Roll a freshly-built worker onto a prior incarnation's checkpoint."""
    worker.engine.stats.__dict__.update(resume["engine_stats"].__dict__)
    worker.engine.tree_bus.stats.__dict__.update(resume["bus_stats"].__dict__)
    worker.accelerator.access_engine.stats.__dict__.update(
        resume["access_stats"].__dict__
    )
    worker.retry_stats.__dict__.update(resume["retry_stats"].__dict__)
    if resume.get("rng_state") is not None and worker.rng is not None:
        worker.rng.bit_generator.state = copy.deepcopy(resume["rng_state"])


def _worker_snapshot(worker: SegmentWorker, store: SharedPageStore, injector, fired_seen: int) -> dict:
    """Everything the parent merges back after a handshake or window."""
    snapshot = {
        "engine_stats": copy.copy(worker.engine.stats),
        "bus_stats": copy.copy(worker.engine.tree_bus.stats),
        "access_stats": copy.copy(worker.accelerator.access_engine.stats),
        "storage": copy.copy(store.stats),
        "tuples_extracted": worker.tuples_extracted,
        "retry_stats": copy.copy(worker.retry_stats),
        "rng_state": (
            copy.deepcopy(worker.rng.bit_generator.state)
            if worker.rng is not None
            else None
        ),
        "fault_calls": dict(injector.calls) if injector is not None else None,
        "fired": list(injector.fired[fired_seen:]) if injector is not None else [],
    }
    return snapshot


def _segment_child_main(
    conn,
    task: SegmentTask,
    handle: SharedPageStoreHandle,
    chaos: ChaosConfig | None,
    resume: dict | None,
) -> None:
    """Entry point of one persistent segment worker process."""
    store: SharedPageStore | None = None
    armed = None
    fired_seen = 0
    try:
        injector = None
        if chaos is not None:
            armed = inject_faults(chaos.plan, offsets=chaos.offsets)
            injector = armed.__enter__()
        store = SharedPageStore.attach(handle)
        spec, binary = rebuild_spec_and_binary(
            task.algorithm,
            task.n_features,
            task.hyperparameters,
            task.model_topology,
            task.udf_name,
            task.layout,
            task.fpga,
            task.n_tuples,
        )
        accelerator = DAnAAccelerator(
            binary=binary, schema=spec.schema, fpga=task.fpga
        )
        worker = SegmentWorker(
            segment_id=task.segment_id,
            accelerator=accelerator,
            partition=PagePartition(task.segment_id, task.page_nos),
            rng=segment_rng(task.seed, task.segments, task.segment_id),
        )
        images = [store.page(no) for no in task.page_nos]
        worker.extract_pages(
            images,
            use_striders=task.use_striders,
            layout=task.layout,
            schema=spec.schema,
        )
        if resume is not None:
            _restore_worker(worker, resume)
        snapshot = _worker_snapshot(worker, store, injector, fired_seen)
        fired_seen += len(snapshot["fired"])
        snapshot["has_rows"] = worker.has_rows()
        snapshot["pid"] = os.getpid()
        _send_msg(conn, ("ready", snapshot))
    except TransientError as error:
        _safe_send(conn, ("transient", str(error)))
        return
    except BaseException as error:  # noqa: BLE001 - shipped to the parent
        _safe_send(conn, ("raise", error))
        return

    while True:
        try:
            message, _size = _recv_msg(conn)
        except (EOFError, OSError):  # parent went away
            break
        command = message[0]
        if command == "shutdown":
            _safe_send(conn, ("bye", None))
            break
        if command != "window":
            _safe_send(
                conn, ("raise", RuntimeError(f"unknown command {command!r}"))
            )
            continue
        _cmd, models, count, convergence_check, capture_telemetry = message
        try:
            session = Telemetry() if capture_telemetry else None
            if session is not None:
                with enable_telemetry(session):
                    result = run_stale_window(
                        worker,
                        spec,
                        models,
                        count,
                        task.shuffle,
                        convergence_check,
                        retry=task.retry,
                        retry_stats=worker.retry_stats,
                    )
            else:
                result = run_stale_window(
                    worker,
                    spec,
                    models,
                    count,
                    task.shuffle,
                    convergence_check,
                    retry=task.retry,
                    retry_stats=worker.retry_stats,
                )
            payload = _worker_snapshot(worker, store, injector, fired_seen)
            fired_seen += len(payload["fired"])
            payload["models"] = result.models
            payload["epochs_run"] = result.epochs_run
            payload["converged"] = result.converged
            payload["telemetry"] = session.export() if session is not None else None
            _send_msg(conn, ("ok", payload))
        except TransientError as error:
            _safe_send(conn, ("transient", str(error)))
        except RetryExhaustedError as error:
            _safe_send(conn, ("exhausted", str(error)))
        except BaseException as error:  # noqa: BLE001 - shipped to the parent
            _safe_send(conn, ("raise", error))
    if store is not None:
        store.close()
    if armed is not None:
        armed.__exit__(None, None, None)
    try:
        conn.close()
    except OSError:  # pragma: no cover - already closed
        pass


def _score_child_main(
    conn,
    task: ScoreTask,
    handle: SharedPageStoreHandle,
    models: Mapping[str, np.ndarray],
) -> None:
    """Entry point of one one-shot scan-and-score worker process."""
    store: SharedPageStore | None = None
    try:
        from repro.rdbms.heapfile import decode_page_rows
        from repro.serving.inference import DEFAULT_SCORE_BATCH, InferencePlan

        store = SharedPageStore.attach(handle)
        spec, binary = rebuild_spec_and_binary(
            task.algorithm,
            task.n_features,
            task.hyperparameters,
            task.model_topology,
            task.udf_name,
            task.layout,
            task.fpga,
            task.n_tuples,
        )
        plan = InferencePlan.from_binary(binary, spec)
        engine = plan.new_engine()
        images = [store.page(no) for no in task.page_nos]
        if task.use_striders:
            accelerator = DAnAAccelerator(
                binary=binary, schema=spec.schema, fpga=task.fpga
            )
            if task.stream:
                predictions, sizes = accelerator.score_stream_from_pages(
                    images,
                    models,
                    engine,
                    batch_size=task.batch_size or DEFAULT_SCORE_BATCH,
                    path=task.path,
                )
            else:
                predictions, sizes = accelerator.score_from_pages(
                    images, models, engine, path=task.path, batch_size=task.batch_size
                )
            access_stats = accelerator.access_engine.stats
        else:
            chunks = [
                decode_page_rows(image, task.layout, spec.schema) for image in images
            ]
            sizes = [len(chunk) for chunk in chunks]
            rows = (
                np.vstack(chunks) if chunks else np.empty((0, len(spec.schema)))
            )
            predictions = engine.score(
                rows, models, path=task.path, batch_size=task.batch_size
            )
            access_stats = AccessEngineStats()
        payload = {
            "predictions": predictions,
            "sizes": sizes,
            "tuples_scored": engine.stats.tuples_scored,
            "access_stats": copy.copy(access_stats),
            "inference_stats": copy.copy(engine.stats),
            "storage": copy.copy(store.stats),
            "pid": os.getpid(),
        }
        _send_msg(conn, ("ok", payload))
    except TransientError as error:
        _safe_send(conn, ("transient", str(error)))
    except BaseException as error:  # noqa: BLE001 - shipped to the parent
        _safe_send(conn, ("raise", error))
    finally:
        if store is not None:
            store.close()
        try:
            conn.close()
        except OSError:  # pragma: no cover - already closed
            pass


# ---------------------------------------------------------------------- #
# parent-side handles
# ---------------------------------------------------------------------- #
class ProcessSegmentWorker:
    """Parent-side handle for one persistent segment worker process.

    Duck-types the stats surface of
    :class:`~repro.cluster.segment_worker.SegmentWorker` (``segment_id``,
    ``partition``, ``tuples_extracted``, engine/access counters) so the
    sharded facade builds its :class:`~repro.cluster.sharded.SegmentReport`
    from either kind of worker.
    """

    def __init__(
        self,
        task: SegmentTask,
        handle: SharedPageStoreHandle,
        pool: "ProcessSegmentPool",
    ) -> None:
        self.task = task
        self.handle = handle
        self.pool = pool
        self.segment_id = task.segment_id
        self.partition = PagePartition(task.segment_id, task.page_nos)
        self.process = None
        self.conn = None
        self.pid: int | None = None
        self.has_rows = False
        self.tuples_extracted = 0
        self.engine_stats = EngineRunStats()
        self.bus_stats = TreeBusStats()
        self.access_stats = AccessEngineStats()
        #: fault/retry counters the child booked for its in-window retries.
        self.child_retry_stats = RetryStats()
        #: fault/retry counters of parent-side death supervision.
        self.supervision_retry_stats = RetryStats()
        #: cumulative shared-store page I/O already merged into the parent.
        self._storage_applied = StorageStats()
        #: last-good state a respawned incarnation resumes from.
        self._checkpoint: dict | None = None
        self._fault_calls: dict[str, int] | None = None

    # -- lifecycle ------------------------------------------------------ #
    def start(self) -> None:
        """(Re)spawn the worker process and run the init handshake."""
        self.kill()
        chaos = self.pool.chaos
        if chaos is not None and self._checkpoint is not None:
            # Respawn after a death: the exit fault already fired (one-shot
            # crash, not a crash loop) and per-site call counters resume
            # where the last *reported* state left them.
            chaos = ChaosConfig(
                plan=chaos.plan.without_kind("exit"), offsets=self._fault_calls
            )
        parent_conn, child_conn = self.pool.context.Pipe()
        process = self.pool.context.Process(
            target=_segment_child_main,
            args=(child_conn, self.task, self.handle, chaos, self._checkpoint),
            daemon=True,
        )
        process.start()
        child_conn.close()
        self.process, self.conn = process, parent_conn
        payload = self._recv()
        self.pid = payload.get("pid")
        self.has_rows = bool(payload["has_rows"])
        self._apply(payload)

    def respawn(self) -> None:
        """Death-recovery reset hook for :meth:`RetryPolicy.run`."""
        self._storage_applied = StorageStats()
        self.start()

    def kill(self) -> None:
        """Terminate the child process immediately (also used by tests)."""
        if self.conn is not None:
            try:
                self.conn.close()
            except OSError:  # pragma: no cover
                pass
            self.conn = None
        if self.process is not None and self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=SHUTDOWN_GRACE_S)
        self.process = None

    def shutdown(self) -> None:
        """Graceful stop: ask the child to exit, then reap it."""
        if self.conn is not None and self.process is not None and self.process.is_alive():
            try:
                self._send(("shutdown",))
                _recv_msg(self.conn)  # "bye"
            except (TransientError, EOFError, OSError):
                pass
        if self.process is not None:
            self.process.join(timeout=SHUTDOWN_GRACE_S)
            if self.process.is_alive():  # pragma: no cover - stuck child
                self.process.terminate()
                self.process.join(timeout=SHUTDOWN_GRACE_S)
        if self.conn is not None:
            try:
                self.conn.close()
            except OSError:  # pragma: no cover
                pass
        self.process, self.conn = None, None

    # -- protocol ------------------------------------------------------- #
    def _died(self, cause: BaseException) -> TransientError:
        return TransientError(
            f"segment {self.segment_id} worker process "
            f"(pid {self.pid}) died mid-window"
        )

    def _send(self, message) -> None:
        try:
            size = _send_msg(self.conn, message)
        except (BrokenPipeError, OSError) as error:
            raise self._died(error) from error
        self.pool.account_ipc(size)

    def _recv(self) -> dict:
        try:
            message, size = _recv_msg(self.conn)
        except (EOFError, OSError) as error:
            raise self._died(error) from error
        self.pool.account_ipc(size, round_trip=True)
        kind, payload = message
        if kind == "transient":
            raise TransientError(payload)
        if kind == "exhausted":
            raise RetryExhaustedError(payload)
        if kind == "raise":
            raise payload
        return payload

    def request_window(
        self,
        models: dict[str, np.ndarray],
        count: int,
        convergence_check: bool,
        capture_telemetry: bool,
    ) -> dict:
        """Run one stale window in the child; apply its shipped state."""
        self._send(("window", models, count, convergence_check, capture_telemetry))
        payload = self._recv()
        self._apply(payload)
        return payload

    # -- shipped-state application -------------------------------------- #
    def _apply(self, payload: dict) -> None:
        self.engine_stats = payload["engine_stats"]
        self.bus_stats = payload["bus_stats"]
        self.access_stats = payload["access_stats"]
        self.tuples_extracted = payload["tuples_extracted"]
        self.child_retry_stats = payload["retry_stats"]
        self._fault_calls = payload.get("fault_calls")
        self._checkpoint = {
            "engine_stats": copy.copy(payload["engine_stats"]),
            "bus_stats": copy.copy(payload["bus_stats"]),
            "access_stats": copy.copy(payload["access_stats"]),
            "retry_stats": copy.copy(payload["retry_stats"]),
            "rng_state": payload.get("rng_state"),
        }
        self.pool.absorb(self, payload)


class ProcessSegmentPool:
    """Persistent spawn-safe pool: one process per segment, reused windows.

    The pool owns nothing but the processes — the shared page store is
    created (and unlinked) by the caller, and merge/convergence decisions
    stay in the parent's epoch step.
    """

    def __init__(
        self,
        tasks: list[SegmentTask],
        handle: SharedPageStoreHandle,
        retry: RetryPolicy | None = None,
        chaos: ChaosConfig | None = None,
        storage_sink: StorageStats | None = None,
    ) -> None:
        self.context = multiprocessing.get_context("spawn")
        self.retry = retry
        self.chaos = chaos
        self.storage_sink = storage_sink
        self.ipc = IPCStats()
        self._merge_lock = threading.Lock()
        self.workers = [ProcessSegmentWorker(task, handle, self) for task in tasks]
        #: concurrent dispatch width: ``min(segments, cpu count)``, so a
        #: ``segments > cores`` run supervises at most one window per core.
        self.worker_limit = min(len(self.workers), max(1, os.cpu_count() or 1))
        #: workers whose partitions hold at least one tuple (set by start).
        self.active: list[ProcessSegmentWorker] = []
        self._executor: ThreadPoolExecutor | None = None

    # -- lifecycle ------------------------------------------------------ #
    def start(self) -> None:
        """Spawn every worker (concurrently) and run the init handshakes."""
        if len(self.workers) > 1:
            self._executor = ThreadPoolExecutor(max_workers=self.worker_limit)
            list(self._executor.map(self._supervised_start, self.workers))
        else:
            for worker in self.workers:
                self._supervised_start(worker)
        self.active = [worker for worker in self.workers if worker.has_rows]

    def _supervised_start(self, worker: ProcessSegmentWorker) -> None:
        if self.retry is None:
            worker.start()
            return
        self.retry.run(
            worker.start,
            stats=worker.supervision_retry_stats,
            label=f"segment {worker.segment_id} worker process start",
        )

    def shutdown(self) -> None:
        """Stop every worker process and the dispatch executor."""
        for worker in self.workers:
            worker.shutdown()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    # -- windows -------------------------------------------------------- #
    def run_window(
        self,
        models_per_worker: list[dict[str, np.ndarray]],
        count: int,
        convergence_check: bool,
    ) -> list[dict]:
        """One stale window on every active worker, processes in parallel."""
        capture = telemetry() is not None

        def dispatch(pair):
            index, worker = pair
            return self._supervised_window(
                worker, models_per_worker[index], count, convergence_check, capture
            )

        if self._executor is not None and len(self.active) > 1:
            return list(self._executor.map(dispatch, enumerate(self.active)))
        return [dispatch(pair) for pair in enumerate(self.active)]

    def _supervised_window(
        self,
        worker: ProcessSegmentWorker,
        models: dict[str, np.ndarray],
        count: int,
        convergence_check: bool,
        capture: bool,
    ) -> dict:
        def attempt() -> dict:
            return worker.request_window(models, count, convergence_check, capture)

        if self.retry is None:
            return attempt()
        return self.retry.run(
            attempt,
            stats=worker.supervision_retry_stats,
            reset=worker.respawn,
            label=f"segment {worker.segment_id} worker process window",
        )

    # -- merge-back ----------------------------------------------------- #
    def account_ipc(self, size: int, round_trip: bool = False) -> None:
        """Book one pipe transfer into the run's IPC counters."""
        with self._merge_lock:
            self.ipc.bytes_shipped += size
            if round_trip:
                self.ipc.round_trips += 1

    def absorb(self, worker: ProcessSegmentWorker, payload: dict) -> None:
        """Merge a child's shipped side-state into the parent session.

        Shared-store page reads go into the parent's
        :class:`~repro.rdbms.storage.StorageStats` (as deltas against what
        this worker already reported), fired faults land in the parent's
        armed injector log, and the child's telemetry export is absorbed
        into the parent's armed session tagged with segment id + pid.
        """
        with self._merge_lock:
            storage = payload.get("storage")
            if storage is not None and self.storage_sink is not None:
                applied = worker._storage_applied
                self.storage_sink.page_reads += storage.page_reads - applied.page_reads
                self.storage_sink.page_writes += (
                    storage.page_writes - applied.page_writes
                )
                self.storage_sink.bytes_read += storage.bytes_read - applied.bytes_read
                self.storage_sink.bytes_written += (
                    storage.bytes_written - applied.bytes_written
                )
                worker._storage_applied = storage
            fired = payload.get("fired")
            if fired:
                injector = active_injector()
                if injector is not None:
                    injector.fired.extend(fired)
        exported = payload.get("telemetry")
        if exported is not None:
            session = telemetry()
            if session is not None:
                session.absorb(exported, segment=worker.segment_id, worker_pid=worker.pid)


def chaos_from_active_injector() -> ChaosConfig | None:
    """Ship the currently-armed fault plan into worker processes, if any.

    In processes mode the segment-level fault sites fire inside the
    children (each child counts its own calls); the parent's injector
    collects the children's fired-fault log as windows report back.
    """
    injector = active_injector()
    if injector is None:
        return None
    return ChaosConfig(plan=injector.plan, offsets=None)


def score_segment_in_process(
    context,
    task: ScoreTask,
    handle: SharedPageStoreHandle,
    models: Mapping[str, np.ndarray],
    ipc: IPCStats | None = None,
) -> dict:
    """Score one partition in a fresh one-shot worker process.

    Spawns the child, ships the descriptor + models, and blocks for the
    result payload.  A child death surfaces as
    :class:`~repro.exceptions.TransientError` so the scorer's existing
    retry/redistribute supervision applies unchanged.
    """
    parent_conn, child_conn = context.Pipe()
    process = context.Process(
        target=_score_child_main,
        args=(child_conn, task, handle, dict(models)),
        daemon=True,
    )
    process.start()
    child_conn.close()
    try:
        try:
            message, size = _recv_msg(parent_conn)
        except (EOFError, OSError) as error:
            raise TransientError(
                f"segment {task.segment_id} scoring process died"
            ) from error
        if ipc is not None:
            ipc.bytes_shipped += size
            ipc.round_trips += 1
        kind, payload = message
        if kind == "transient":
            raise TransientError(payload)
        if kind == "raise":
            raise payload
        return payload
    finally:
        parent_conn.close()
        process.join(timeout=SHUTDOWN_GRACE_S)
        if process.is_alive():  # pragma: no cover - stuck child
            process.terminate()
            process.join(timeout=SHUTDOWN_GRACE_S)
