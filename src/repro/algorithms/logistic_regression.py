"""Logistic regression trained with (mini-batch) gradient descent."""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro import dana
from repro.algorithms.base import Algorithm, AlgorithmSpec, Hyperparameters
from repro.rdbms.types import Schema


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-z))


class LogisticRegression(Algorithm):
    """Binary logistic regression (labels in {0, 1}) via gradient descent."""

    key = "logistic"
    display_name = "Logistic Regression"

    def build_spec(
        self, n_features: int, hyper: Hyperparameters, model_topology: tuple[int, ...] = ()
    ) -> AlgorithmSpec:
        mc = max(1, hyper.merge_coefficient)
        mo = dana.model([n_features], name="mo")
        x = dana.input([n_features], name="x")
        y = dana.output(name="y")
        lr = dana.meta(hyper.learning_rate, name="lr")
        coeff = dana.meta(float(mc), name="merge_coef")

        algo = dana.algo(mo, x, y, name="logisticR")
        s = dana.sigma(mo * x, 1)
        pred = dana.sigmoid(s)
        er = pred - y
        grad = er * x
        if hyper.regularization > 0.0:
            lam = dana.meta(hyper.regularization, name="lambda")
            grad = grad + lam * mo
        merged = algo.merge(grad, mc, "+")
        up = lr * (merged / coeff)
        algo.setModel(mo - up)
        if hyper.convergence_tolerance is not None:
            tol = dana.meta(hyper.convergence_tolerance, name="tol")
            algo.setConvergence(dana.norm(merged, 1) < tol)
        algo.setEpochs(max(1, hyper.epochs))

        schema = Schema.training_schema(n_features)

        def bind(row: np.ndarray) -> dict[str, np.ndarray | float]:
            return {"x": row[:n_features], "y": float(row[n_features])}

        def bind_batch(rows: np.ndarray) -> dict[str, np.ndarray]:
            return {"x": rows[..., :n_features], "y": rows[..., n_features]}

        def bind_predict(rows: np.ndarray) -> dict[str, np.ndarray]:
            return {"x": rows[..., :n_features]}

        return AlgorithmSpec(
            name=self.key,
            algo=algo,
            schema=schema,
            bind_tuple=bind,
            initial_models={"mo": np.zeros(n_features)},
            hyperparameters=hyper,
            model_topology=(n_features,),
            bind_batch=bind_batch,
            bind_predict=bind_predict,
            # Rebuild recipe for worker processes (binders do not pickle).
            metadata={
                "builder": {
                    "algorithm": self.key,
                    "n_features": n_features,
                    "model_topology": (n_features,),
                }
            },
        )

    def reference_fit(
        self, data: np.ndarray, hyper: Hyperparameters, epochs: int
    ) -> dict[str, np.ndarray]:
        n_features = data.shape[1] - 1
        X, y = data[:, :n_features], data[:, n_features]
        w = np.zeros(n_features)
        batch = max(1, hyper.merge_coefficient)
        for _ in range(epochs):
            for start in range(0, len(X), batch):
                xb, yb = X[start : start + batch], y[start : start + batch]
                grad = (_sigmoid(xb @ w) - yb) @ xb
                if hyper.regularization > 0.0:
                    grad = grad + len(xb) * hyper.regularization * w
                w = w - hyper.learning_rate * grad / batch
        return {"mo": w}

    def loss(self, data: np.ndarray, models: Mapping[str, np.ndarray]) -> float:
        n_features = data.shape[1] - 1
        X, y = data[:, :n_features], data[:, n_features]
        p = np.clip(_sigmoid(X @ np.asarray(models["mo"])), 1e-12, 1 - 1e-12)
        return float(-np.mean(y * np.log(p) + (1 - y) * np.log(1 - p)))

    def accuracy(self, data: np.ndarray, models: Mapping[str, np.ndarray]) -> float:
        """Classification accuracy with a 0.5 decision threshold."""
        n_features = data.shape[1] - 1
        X, y = data[:, :n_features], data[:, n_features]
        pred = (_sigmoid(X @ np.asarray(models["mo"])) >= 0.5).astype(float)
        return float(np.mean(pred == y))

    def flops_per_tuple(self, n_features: int) -> int:
        # dot product + sigmoid (≈10 flops) + gradient + update
        return 5 * n_features + 12
