"""Machine-learning algorithms evaluated in the paper, expressed in the DSL."""

from repro.algorithms.base import Algorithm, AlgorithmSpec, Hyperparameters
from repro.algorithms.linear_regression import LinearRegression
from repro.algorithms.logistic_regression import LogisticRegression
from repro.algorithms.lrmf import LowRankMatrixFactorization
from repro.algorithms.registry import algorithm_keys, get_algorithm, register_algorithm
from repro.algorithms.svm import SupportVectorMachine

__all__ = [
    "Algorithm",
    "AlgorithmSpec",
    "Hyperparameters",
    "LinearRegression",
    "LogisticRegression",
    "LowRankMatrixFactorization",
    "SupportVectorMachine",
    "algorithm_keys",
    "get_algorithm",
    "register_algorithm",
]
