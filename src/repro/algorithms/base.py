"""Common interface for the machine-learning algorithms used in the paper.

Each algorithm bundles:

* the **DSL program** — the update rule, merge function and convergence
  criterion expressed with :mod:`repro.dsl`, exactly what a data scientist
  would write as the UDF;
* the **tuple binder** — how a raw training tuple maps onto the DSL's
  ``input``/``output`` variables — and the **batch binder**, its vectorised
  twin that maps a whole ``(B, n_columns)`` tuple block onto the same
  variables with a leading batch axis (consumed by the execution engine's
  batched tape);
* the **initial model state** and a **NumPy reference implementation** used
  by the test-suite and by the software baselines (MADlib, Liblinear,
  DimmWitted models);
* per-tuple operation counts that feed the CPU cost model.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Mapping

import numpy as np

from repro.dsl.algo import Algo
from repro.rdbms.types import Schema

TupleBinder = Callable[[np.ndarray], dict[str, np.ndarray | float]]
BatchBinder = Callable[[np.ndarray], dict[str, np.ndarray]]


@dataclass
class Hyperparameters:
    """Training hyper-parameters shared by all systems under comparison."""

    learning_rate: float = 0.05
    regularization: float = 0.0
    merge_coefficient: int = 16
    epochs: int = 1
    convergence_tolerance: float | None = None
    rank: int = 10   # only used by low-rank matrix factorization

    def scaled(self, **overrides) -> "Hyperparameters":
        values = {**self.__dict__, **overrides}
        return Hyperparameters(**values)


@dataclass
class AlgorithmSpec:
    """Everything a runtime needs to execute one algorithm on one dataset."""

    name: str
    algo: Algo
    schema: Schema
    bind_tuple: TupleBinder
    initial_models: dict[str, np.ndarray]
    hyperparameters: Hyperparameters
    model_topology: tuple[int, ...] = ()
    metadata: dict = field(default_factory=dict)
    bind_batch: BatchBinder | None = None
    #: forward-only binder for prediction serving: maps a ``(B, cols)``
    #: block (with or without the trailing label column) onto the forward
    #: graph's input variables only — no labels, no gradient inputs.
    bind_predict: BatchBinder | None = None


class Algorithm(ABC):
    """Base class of the four algorithms evaluated in the paper."""

    #: short identifier used in workload tables ("linear", "logistic", ...)
    key: str = "base"
    #: human-readable name used in reports
    display_name: str = "Algorithm"

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @abstractmethod
    def build_spec(
        self, n_features: int, hyper: Hyperparameters, model_topology: tuple[int, ...] = ()
    ) -> AlgorithmSpec:
        """Build the DSL program and bindings for a dataset of ``n_features``."""

    @abstractmethod
    def reference_fit(
        self, data: np.ndarray, hyper: Hyperparameters, epochs: int
    ) -> dict[str, np.ndarray]:
        """NumPy reference training loop (mini-batch gradient descent)."""

    @abstractmethod
    def loss(self, data: np.ndarray, models: Mapping[str, np.ndarray]) -> float:
        """Training loss of a model on a dataset (used to verify learning)."""

    # ------------------------------------------------------------------ #
    # cost-model hooks
    # ------------------------------------------------------------------ #
    def flops_per_tuple(self, n_features: int) -> int:
        """Floating-point operations one update-rule evaluation performs."""
        return 6 * max(1, n_features)

    def cpu_vectorizable(self) -> bool:
        """Whether commodity CPUs can SIMD-vectorise the inner loop well.

        The paper observes that linear regression on wide dense data has
        "high CPU vectorization potential", which is why Blog Feedback sees
        the smallest speedup; algorithms with non-linear element-wise work
        or data-dependent branches vectorise less well.
        """
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"
