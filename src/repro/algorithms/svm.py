"""Linear Support Vector Machine trained with sub-gradient descent.

The hinge-loss sub-gradient for a tuple ``(x, y)`` with ``y ∈ {-1, +1}`` is
``-y·x`` whenever ``y·(w·x) < 1`` and ``0`` otherwise, plus the L2
regularisation term.  The data-dependent indicator is expressed with the
DSL's ``<`` primary operation, which the execution engine evaluates as a
0/1 mask — no control flow is needed on the accelerator.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro import dana
from repro.algorithms.base import Algorithm, AlgorithmSpec, Hyperparameters
from repro.rdbms.types import Schema


class SupportVectorMachine(Algorithm):
    """Linear SVM (labels in {-1, +1}) via mini-batch sub-gradient descent."""

    key = "svm"
    display_name = "Support Vector Machine"

    def build_spec(
        self, n_features: int, hyper: Hyperparameters, model_topology: tuple[int, ...] = ()
    ) -> AlgorithmSpec:
        mc = max(1, hyper.merge_coefficient)
        mo = dana.model([n_features], name="mo")
        x = dana.input([n_features], name="x")
        y = dana.output(name="y")
        lr = dana.meta(hyper.learning_rate, name="lr")
        lam = dana.meta(max(hyper.regularization, 1e-4), name="lambda")
        coeff = dana.meta(float(mc), name="merge_coef")
        one = dana.meta(1.0, name="one")

        algo = dana.algo(mo, x, y, name="svm")
        margin = y * dana.sigma(mo * x, 1)
        violates = margin < one                 # 1.0 when the tuple is inside the margin
        hinge_grad = (violates * (0.0 - y)) * x
        grad = hinge_grad + lam * mo
        merged = algo.merge(grad, mc, "+")
        up = lr * (merged / coeff)
        algo.setModel(mo - up)
        if hyper.convergence_tolerance is not None:
            tol = dana.meta(hyper.convergence_tolerance, name="tol")
            algo.setConvergence(dana.norm(merged, 1) < tol)
        algo.setEpochs(max(1, hyper.epochs))

        schema = Schema.training_schema(n_features)

        def bind(row: np.ndarray) -> dict[str, np.ndarray | float]:
            return {"x": row[:n_features], "y": float(row[n_features])}

        def bind_batch(rows: np.ndarray) -> dict[str, np.ndarray]:
            return {"x": rows[..., :n_features], "y": rows[..., n_features]}

        def bind_predict(rows: np.ndarray) -> dict[str, np.ndarray]:
            # The decision value sign(w.x) needs the features only.
            return {"x": rows[..., :n_features]}

        return AlgorithmSpec(
            name=self.key,
            algo=algo,
            schema=schema,
            bind_tuple=bind,
            initial_models={"mo": np.zeros(n_features)},
            hyperparameters=hyper,
            model_topology=(n_features,),
            bind_batch=bind_batch,
            bind_predict=bind_predict,
            # Rebuild recipe for worker processes (binders do not pickle).
            metadata={
                "builder": {
                    "algorithm": self.key,
                    "n_features": n_features,
                    "model_topology": (n_features,),
                }
            },
        )

    def reference_fit(
        self, data: np.ndarray, hyper: Hyperparameters, epochs: int
    ) -> dict[str, np.ndarray]:
        n_features = data.shape[1] - 1
        X, y = data[:, :n_features], data[:, n_features]
        lam = max(hyper.regularization, 1e-4)
        w = np.zeros(n_features)
        batch = max(1, hyper.merge_coefficient)
        for _ in range(epochs):
            for start in range(0, len(X), batch):
                xb, yb = X[start : start + batch], y[start : start + batch]
                margins = yb * (xb @ w)
                mask = (margins < 1.0).astype(float)
                grad = (mask * -yb) @ xb + len(xb) * lam * w
                w = w - hyper.learning_rate * grad / batch
        return {"mo": w}

    def loss(self, data: np.ndarray, models: Mapping[str, np.ndarray]) -> float:
        n_features = data.shape[1] - 1
        X, y = data[:, :n_features], data[:, n_features]
        w = np.asarray(models["mo"])
        hinge = np.maximum(0.0, 1.0 - y * (X @ w))
        return float(np.mean(hinge) + 0.5 * 1e-4 * float(w @ w))

    def accuracy(self, data: np.ndarray, models: Mapping[str, np.ndarray]) -> float:
        """Classification accuracy using the sign of the decision value."""
        n_features = data.shape[1] - 1
        X, y = data[:, :n_features], data[:, n_features]
        pred = np.sign(X @ np.asarray(models["mo"]))
        pred[pred == 0] = 1.0
        return float(np.mean(pred == y))

    def flops_per_tuple(self, n_features: int) -> int:
        # dot product + margin test + masked gradient + regularisation + update
        return 7 * n_features + 4
