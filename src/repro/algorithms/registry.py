"""Registry mapping algorithm keys to implementations."""

from __future__ import annotations

from repro.exceptions import ConfigurationError
from repro.algorithms.base import Algorithm
from repro.algorithms.linear_regression import LinearRegression
from repro.algorithms.logistic_regression import LogisticRegression
from repro.algorithms.lrmf import LowRankMatrixFactorization
from repro.algorithms.svm import SupportVectorMachine

_REGISTRY: dict[str, type[Algorithm]] = {
    LinearRegression.key: LinearRegression,
    LogisticRegression.key: LogisticRegression,
    SupportVectorMachine.key: SupportVectorMachine,
    LowRankMatrixFactorization.key: LowRankMatrixFactorization,
}

# Aliases used by the paper's workload names.
_ALIASES = {
    "linear regression": "linear",
    "logistic regression": "logistic",
    "support vector machine": "svm",
    "low rank matrix factorization": "lrmf",
    "lr": "logistic",
}


def algorithm_keys() -> list[str]:
    """All registered algorithm keys."""
    return sorted(_REGISTRY)


def get_algorithm(key: str) -> Algorithm:
    """Instantiate the algorithm registered under ``key`` (or an alias)."""
    normalized = key.strip().lower()
    normalized = _ALIASES.get(normalized, normalized)
    try:
        return _REGISTRY[normalized]()
    except KeyError:
        raise ConfigurationError(
            f"unknown algorithm {key!r}; available: {algorithm_keys()}"
        ) from None


def register_algorithm(cls: type[Algorithm]) -> type[Algorithm]:
    """Register a user-defined algorithm class (decorator-friendly)."""
    if not issubclass(cls, Algorithm):
        raise ConfigurationError(f"{cls!r} is not an Algorithm subclass")
    _REGISTRY[cls.key] = cls
    return cls
