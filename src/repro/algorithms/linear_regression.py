"""Linear regression trained with (mini-batch) gradient descent.

This is the running example of the paper (§4.3): the update rule computes
the gradient of the squared loss for one tuple, the merge function sums the
per-thread gradients, and the optimizer applies one scaled step per batch.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro import dana
from repro.algorithms.base import Algorithm, AlgorithmSpec, Hyperparameters
from repro.rdbms.types import Schema


class LinearRegression(Algorithm):
    """Least-squares linear regression via batched gradient descent."""

    key = "linear"
    display_name = "Linear Regression"

    # ------------------------------------------------------------------ #
    # DSL program
    # ------------------------------------------------------------------ #
    def build_spec(
        self, n_features: int, hyper: Hyperparameters, model_topology: tuple[int, ...] = ()
    ) -> AlgorithmSpec:
        mc = max(1, hyper.merge_coefficient)
        mo = dana.model([n_features], name="mo")
        x = dana.input([n_features], name="x")
        y = dana.output(name="y")
        lr = dana.meta(hyper.learning_rate, name="lr")
        coeff = dana.meta(float(mc), name="merge_coef")

        algo = dana.algo(mo, x, y, name="linearR")
        s = dana.sigma(mo * x, 1)
        er = s - y
        grad = er * x
        merged = algo.merge(grad, mc, "+")
        up = lr * (merged / coeff)
        algo.setModel(mo - up)
        if hyper.convergence_tolerance is not None:
            tol = dana.meta(hyper.convergence_tolerance, name="tol")
            algo.setConvergence(dana.norm(merged, 1) < tol)
        algo.setEpochs(max(1, hyper.epochs))

        schema = Schema.training_schema(n_features)

        def bind(row: np.ndarray) -> dict[str, np.ndarray | float]:
            return {"x": row[:n_features], "y": float(row[n_features])}

        def bind_batch(rows: np.ndarray) -> dict[str, np.ndarray]:
            # Ellipsis indexing keeps the binder layout-agnostic: it slices
            # the trailing column axis of both a plain (B, cols) batch and
            # the sharded lock-step (B, segments, cols) block.
            return {"x": rows[..., :n_features], "y": rows[..., n_features]}

        def bind_predict(rows: np.ndarray) -> dict[str, np.ndarray]:
            # Forward pass only: the label column (if present) is ignored.
            return {"x": rows[..., :n_features]}

        return AlgorithmSpec(
            name=self.key,
            algo=algo,
            schema=schema,
            bind_tuple=bind,
            initial_models={"mo": np.zeros(n_features)},
            hyperparameters=hyper,
            model_topology=(n_features,),
            bind_batch=bind_batch,
            bind_predict=bind_predict,
            # Rebuild recipe for worker processes (binders do not pickle).
            metadata={
                "builder": {
                    "algorithm": self.key,
                    "n_features": n_features,
                    "model_topology": (n_features,),
                }
            },
        )

    # ------------------------------------------------------------------ #
    # reference implementation
    # ------------------------------------------------------------------ #
    def reference_fit(
        self, data: np.ndarray, hyper: Hyperparameters, epochs: int
    ) -> dict[str, np.ndarray]:
        n_features = data.shape[1] - 1
        X, y = data[:, :n_features], data[:, n_features]
        w = np.zeros(n_features)
        batch = max(1, hyper.merge_coefficient)
        for _ in range(epochs):
            for start in range(0, len(X), batch):
                xb, yb = X[start : start + batch], y[start : start + batch]
                grad = (xb @ w - yb) @ xb
                w = w - hyper.learning_rate * grad / batch
        return {"mo": w}

    def loss(self, data: np.ndarray, models: Mapping[str, np.ndarray]) -> float:
        n_features = data.shape[1] - 1
        X, y = data[:, :n_features], data[:, n_features]
        residual = X @ np.asarray(models["mo"]) - y
        return float(np.mean(residual**2))

    def flops_per_tuple(self, n_features: int) -> int:
        # dot product (2k) + error (1) + gradient (k) + scaled update (2k)
        return 5 * n_features + 1

    def cpu_vectorizable(self) -> bool:
        return True
