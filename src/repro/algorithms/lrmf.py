"""Low-Rank Matrix Factorization trained with stochastic gradient descent.

Each training tuple is a rating ``(row, col, value)``; the model consists of
two factor matrices ``L`` (rows × rank) and ``R`` (cols × rank).  A tuple
updates only the two factor rows it addresses, which is expressed with the
reproduction's ``gather`` extension (see
:class:`repro.dsl.expressions.GatherExpression`) — the row/column indices
are part of the training tuple that the Striders deliver, so the "no
dynamic variables" rule of the DSL still holds.

Because different tuples touch different rows, the parallel threads apply
their updates independently (Hogwild-style) rather than through a merge
function, which is also why the paper observes that LRMF gains little from
additional threads (Figure 12) — the parallelism already lives inside a
single update.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro import dana
from repro.algorithms.base import Algorithm, AlgorithmSpec, Hyperparameters
from repro.rdbms.types import Schema


class LowRankMatrixFactorization(Algorithm):
    """LRMF for rating matrices, trained one rating at a time."""

    key = "lrmf"
    display_name = "Low-Rank Matrix Factorization"

    def build_spec(
        self, n_features: int, hyper: Hyperparameters, model_topology: tuple[int, ...] = ()
    ) -> AlgorithmSpec:
        if len(model_topology) < 2:
            raise ValueError(
                "LRMF needs a model topology of (n_rows, n_cols[, rank]); "
                f"got {model_topology!r}"
            )
        n_rows, n_cols = int(model_topology[0]), int(model_topology[1])
        rank = int(model_topology[2]) if len(model_topology) > 2 else hyper.rank

        left = dana.model([n_rows, rank], name="L")
        right = dana.model([n_cols, rank], name="R")
        row_idx = dana.input(name="row")
        col_idx = dana.input(name="col")
        rating = dana.output(name="value")
        lr = dana.meta(hyper.learning_rate, name="lr")
        lam = dana.meta(max(hyper.regularization, 1e-4), name="lambda")

        algo = dana.algo(left, (row_idx, col_idx), rating, name="lrmf", extra_models=(right,))
        li = dana.gather(left, row_idx)
        rj = dana.gather(right, col_idx)
        pred = dana.sigma(li * rj, 1)
        err = pred - rating
        grad_l = err * rj + lam * li
        grad_r = err * li + lam * rj
        algo.setModel(li - lr * grad_l, var=left)
        algo.setModel(rj - lr * grad_r, var=right)
        algo.setEpochs(max(1, hyper.epochs))

        schema = Schema.lrmf_schema()

        def bind(row: np.ndarray) -> dict[str, np.ndarray | float]:
            return {"row": float(row[0]), "col": float(row[1]), "value": float(row[2])}

        def bind_batch(rows: np.ndarray) -> dict[str, np.ndarray]:
            return {"row": rows[:, 0], "col": rows[:, 1], "value": rows[:, 2]}

        def bind_predict(rows: np.ndarray) -> dict[str, np.ndarray]:
            # Rating prediction addresses the two factor rows; the observed
            # value column (if present) is ignored.
            return {"row": rows[:, 0], "col": rows[:, 1]}

        rng = np.random.default_rng(7)
        scale = 1.0 / np.sqrt(rank)
        return AlgorithmSpec(
            name=self.key,
            algo=algo,
            schema=schema,
            bind_tuple=bind,
            initial_models={
                "L": rng.normal(scale=scale, size=(n_rows, rank)),
                "R": rng.normal(scale=scale, size=(n_cols, rank)),
            },
            hyperparameters=hyper,
            model_topology=(n_rows, n_cols, rank),
            bind_batch=bind_batch,
            bind_predict=bind_predict,
            # Rebuild recipe for worker processes (binders do not pickle);
            # the explicit rank makes the rebuilt topology deterministic.
            metadata={
                "builder": {
                    "algorithm": self.key,
                    "n_features": n_features,
                    "model_topology": (n_rows, n_cols, rank),
                }
            },
        )

    def reference_fit(
        self, data: np.ndarray, hyper: Hyperparameters, epochs: int
    ) -> dict[str, np.ndarray]:
        n_rows = int(data[:, 0].max()) + 1
        n_cols = int(data[:, 1].max()) + 1
        rank = hyper.rank
        lam = max(hyper.regularization, 1e-4)
        rng = np.random.default_rng(7)
        scale = 1.0 / np.sqrt(rank)
        left = rng.normal(scale=scale, size=(n_rows, rank))
        right = rng.normal(scale=scale, size=(n_cols, rank))
        for _ in range(epochs):
            for i, j, v in data:
                i, j = int(i), int(j)
                li, rj = left[i].copy(), right[j].copy()
                err = float(li @ rj - v)
                left[i] = li - hyper.learning_rate * (err * rj + lam * li)
                right[j] = rj - hyper.learning_rate * (err * li + lam * rj)
        return {"L": left, "R": right}

    def loss(self, data: np.ndarray, models: Mapping[str, np.ndarray]) -> float:
        left = np.asarray(models["L"])
        right = np.asarray(models["R"])
        rows = data[:, 0].astype(int)
        cols = data[:, 1].astype(int)
        preds = np.sum(left[rows] * right[cols], axis=1)
        return float(np.mean((preds - data[:, 2]) ** 2))

    def flops_per_tuple(self, n_features: int) -> int:
        # n_features plays the role of the factorisation rank here:
        # prediction (2r) + error (1) + two gradients (6r) + two updates (4r)
        rank = max(1, n_features)
        return 12 * rank + 1
