"""Operator trees and rendering for ``EXPLAIN [ANALYZE]``.

The executor hands :class:`PlanExplainer` a parsed statement; the
explainer builds a :class:`PlanOperator` tree describing how that
statement would execute — resolved knobs (segments, batch size, stream,
sync policy, the worker clamp) plus *predicted* costs from the
schedule-derived models in :mod:`repro.perf` (cycles, modelled seconds,
pipelined vs. critical path, IPC bytes for process fan-out).  Storage
statements (scans, ``count(*)``, model DDL) are priced here from
catalog statistics; serving statements delegate to the attached
runtime's ``sql_explain`` hook so the tree reflects the very accelerator
design the statement would run on.

``EXPLAIN ANALYZE`` additionally executes the statement inside a
:class:`~repro.obs.statement_trace.StatementTrace` and calls
:meth:`PlanExplainer.annotate`, which fills each operator's ``actual``
side from the captured spans (wall seconds, pages/tuples per span site)
and from ``measure`` callbacks reading the statement's counters — the
predicted-vs-actual deltas a future cost-based planner calibrates on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, TYPE_CHECKING

from repro.exceptions import CatalogError, QueryError
from repro.rdbms.query import (
    CountScan,
    CreateModel,
    DropModel,
    Explain,
    LogicalPlan,
    PredictScan,
    QueryResult,
    ScoreCall,
    SeqScan,
    ShowModels,
    UDFCall,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.statement_trace import StatementTrace


def _format_value(value: Any) -> str:
    """One knob/cost value as compact text (floats trimmed, bools on/off)."""
    if isinstance(value, bool):
        return "on" if value else "off"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _format_mapping(mapping: dict[str, Any]) -> str:
    """``key=value`` pairs joined for one rendered line."""
    return ", ".join(f"{key}={_format_value(val)}" for key, val in mapping.items())


@dataclass
class PlanOperator:
    """One node of an EXPLAIN operator tree.

    ``knobs`` holds the resolved execution parameters, ``predicted`` the
    model-derived costs, and ``actual`` the measured side filled in by
    :meth:`PlanExplainer.annotate` after an ``EXPLAIN ANALYZE`` run.
    ``span_site`` names the telemetry span site this operator's measured
    wall time comes from (``None`` for operators the current execution
    mode gives no span — e.g. the page walk of a process-fan-out run,
    which happens in un-armed child startup); ``span_attrs`` narrows the
    match to spans carrying those attributes (a segment id).  ``measure``
    is an optional callback mapping the executed statement's
    :class:`~repro.rdbms.query.QueryResult` to extra actual entries.
    """

    name: str
    label: str = ""
    knobs: dict[str, Any] = field(default_factory=dict)
    predicted: dict[str, Any] = field(default_factory=dict)
    actual: dict[str, Any] = field(default_factory=dict)
    span_site: str | None = None
    span_attrs: dict[str, Any] = field(default_factory=dict)
    measure: Callable[[QueryResult], dict] | None = None
    children: list["PlanOperator"] = field(default_factory=list)

    def walk(self) -> Iterator["PlanOperator"]:
        """This operator and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict:
        """JSON-friendly form (persisted with the run's trace payload)."""
        return {
            "name": self.name,
            "label": self.label,
            "knobs": dict(self.knobs),
            "predicted": dict(self.predicted),
            "actual": dict(self.actual),
            "span_site": self.span_site,
            "span_attrs": dict(self.span_attrs),
            "children": [child.to_dict() for child in self.children],
        }

    def render(self, prefix: str = "", child_prefix: str = "") -> list[str]:
        """This subtree as indented text lines (the ``QUERY PLAN`` rows)."""
        head = self.name if not self.label else f"{self.name} {self.label}"
        if self.knobs:
            head += f"  ({_format_mapping(self.knobs)})"
        lines = [prefix + head]
        detail_prefix = child_prefix + ("│    " if self.children else "     ")
        if self.predicted:
            lines.append(detail_prefix + "predicted: " + _format_mapping(self.predicted))
        if self.actual:
            lines.append(detail_prefix + "actual: " + _format_mapping(self.actual))
        for index, child in enumerate(self.children):
            last = index == len(self.children) - 1
            branch = "└─ " if last else "├─ "
            cont = "   " if last else "│  "
            lines.extend(child.render(child_prefix + branch, child_prefix + cont))
        return lines


@dataclass
class ExplainReport:
    """The full product of one ``EXPLAIN [ANALYZE]`` statement.

    Carried on the :class:`~repro.rdbms.query.QueryResult` ``payload`` so
    callers (tests, the ops CLI) can inspect the tree, the inner
    statement's result, and the captured trace programmatically instead
    of re-parsing the rendered lines.
    """

    root: PlanOperator
    statement: str
    analyze: bool = False
    #: the inner statement's own result (``EXPLAIN ANALYZE`` only) —
    #: bit-identical to running the statement without EXPLAIN.
    result: QueryResult | None = None
    #: the statement trace payload (``EXPLAIN ANALYZE`` only).
    trace: dict | None = None
    #: run-registry id the trace was persisted under, when the statement
    #: recorded a run.
    run_id: int | None = None

    def render(self) -> list[str]:
        """The ``QUERY PLAN`` output lines."""
        lines = self.root.render()
        if self.analyze and self.trace is not None:
            wall = self.trace.get("wall_seconds", 0.0)
            lines.append(f"statement wall time: {wall:.6f}s")
        if self.run_id is not None:
            lines.append(f"trace recorded: run {self.run_id}")
        return lines

    def to_payload(self) -> dict:
        """JSON-friendly persisted form: plan tree + trace capture."""
        payload = {
            "statement": self.statement,
            "analyze": self.analyze,
            "plan": self.render(),
            "operators": self.root.to_dict(),
        }
        if self.trace is not None:
            payload.update(self.trace)
        return payload


def _attrs_match(span_attrs: dict, wanted: dict) -> bool:
    """True when a span carries every wanted attribute with that value."""
    return all(span_attrs.get(key) == value for key, value in wanted.items())


def filter_limit_ops(where, limit: int | None) -> list[PlanOperator]:
    """Filter/Limit child operators shared by scans and serving statements."""
    children: list[PlanOperator] = []
    if where:
        predicates = " AND ".join(
            f"{c.column} {c.op} {_format_value(c.value)}" for c in where
        )
        children.append(
            PlanOperator(name="Filter", knobs={"predicates": predicates})
        )
    if limit is not None:
        children.append(PlanOperator(name="Limit", knobs={"rows": limit}))
    return children


class PlanExplainer:
    """Builds and annotates EXPLAIN operator trees for one database."""

    def __init__(self, database: Any) -> None:
        """Bind the explainer to the database the statements run against."""
        self.database = database

    # ------------------------------------------------------------------ #
    # tree construction
    # ------------------------------------------------------------------ #
    def build_report(self, plan: Explain) -> ExplainReport:
        """The report skeleton for one parsed ``EXPLAIN`` node."""
        return ExplainReport(
            root=self.build(plan.statement),
            statement=type(plan.statement).__name__,
            analyze=plan.analyze,
        )

    def build(self, statement: LogicalPlan) -> PlanOperator:
        """The operator tree of one inner statement (not yet annotated)."""
        if isinstance(statement, SeqScan):
            return self._build_scan(statement)
        if isinstance(statement, CountScan):
            return self._build_count(statement)
        if isinstance(statement, DropModel):
            return self._build_drop(statement)
        if isinstance(statement, ShowModels):
            return self._build_show()
        if isinstance(statement, (UDFCall, PredictScan, ScoreCall, CreateModel)):
            return self._serving_explain(statement)
        raise QueryError(f"EXPLAIN does not support plan node {statement!r}")

    def _table_stats(self, table_name: str) -> dict[str, int]:
        """Catalogued page/tuple statistics of one table (QueryError-flavoured)."""
        catalog = self.database.catalog
        if not catalog.has_table(table_name):
            raise QueryError(f"table {table_name!r} does not exist")
        entry = catalog.table(table_name)
        return {
            "pages": self.database.storage.page_count(entry.file_name),
            "tuples": entry.tuple_count,
        }

    def _build_scan(self, statement: SeqScan) -> PlanOperator:
        stats = self._table_stats(statement.table_name)
        columns = "*" if statement.columns is None else ",".join(statement.columns)
        return PlanOperator(
            name="SeqScan",
            label=statement.table_name,
            knobs={"columns": columns, **stats},
            predicted={"rows": stats["tuples"]},
            measure=lambda result: {"rows": len(result.rows)},
            children=filter_limit_ops(statement.where, statement.limit),
        )

    def _build_count(self, statement: CountScan) -> PlanOperator:
        stats = self._table_stats(statement.table_name)
        return PlanOperator(
            name="CountScan",
            label=statement.table_name,
            knobs=stats,
            predicted={"rows": 1},
            measure=lambda result: {"count": result.rows[0][0]},
            children=filter_limit_ops(statement.where, None),
        )

    def _build_drop(self, statement: DropModel) -> PlanOperator:
        knobs: dict[str, Any] = {"model": statement.model_name}
        if statement.version is not None:
            knobs["version"] = statement.version
        return PlanOperator(
            name="DropModel",
            knobs=knobs,
            measure=lambda result: {"dropped_versions": len(result.rows)},
        )

    def _build_show(self) -> PlanOperator:
        try:
            count = len(self.database.catalog.models())
        except CatalogError:  # pragma: no cover - defensive
            count = 0
        return PlanOperator(
            name="ShowModels",
            predicted={"rows": count},
            measure=lambda result: {"rows": len(result.rows)},
        )

    def _serving_explain(self, statement: LogicalPlan) -> PlanOperator:
        runtime = getattr(self.database, "serving_runtime", None)
        if runtime is None:
            raise QueryError(
                "no DAnA system is attached to this database; construct "
                "repro.core.DAnA(database) before running prediction or "
                "CREATE MODEL statements"
            )
        return runtime.sql_explain(statement)

    # ------------------------------------------------------------------ #
    # actual-side annotation (EXPLAIN ANALYZE)
    # ------------------------------------------------------------------ #
    def annotate(
        self,
        report: ExplainReport,
        trace: "StatementTrace",
        result: QueryResult,
    ) -> None:
        """Fill every operator's ``actual`` side from one executed run.

        Span-site operators aggregate their matching spans (count, wall
        seconds, summed pages/tuples attributes); ``measure`` callbacks
        read counters off the statement's result.  The root additionally
        books the whole statement's wall time.
        """
        spans = trace.spans()
        for op in report.root.walk():
            if op.span_site is not None:
                matched = [
                    span
                    for span in spans
                    if span.get("name") == op.span_site
                    and _attrs_match(span.get("attrs") or {}, op.span_attrs)
                ]
                if matched:
                    op.actual["spans"] = len(matched)
                    op.actual["wall_seconds"] = round(
                        sum(span.get("duration_s") or 0.0 for span in matched), 6
                    )
                    for key in ("pages", "tuples", "rows", "executed"):
                        values = [
                            (span.get("attrs") or {}).get(key)
                            for span in matched
                            if isinstance(
                                (span.get("attrs") or {}).get(key), (int, float)
                            )
                        ]
                        if values:
                            op.actual[key] = int(sum(values))
            if op.measure is not None:
                op.actual.update(op.measure(result))
        report.root.actual.setdefault(
            "wall_seconds", round(trace.wall_seconds, 6)
        )
