"""System catalog.

Besides the usual table metadata, the catalog is where DAnA stores the
generated accelerator artefacts: "DAnA stores accelerator metadata (Strider
and execution engine instruction schedules) in the RDBMS's catalog along
with the name of a UDF to be invoked from the query" (§3).  The catalog is
therefore shared between the database engine and the (simulated) FPGA.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.exceptions import CatalogError
from repro.rdbms.page import PageLayout
from repro.rdbms.types import Schema


@dataclass
class TableEntry:
    """Catalog record for one table."""

    name: str
    schema: Schema
    file_name: str
    layout: PageLayout
    tuple_count: int = 0


@dataclass(frozen=True)
class ModelParam:
    """Shape descriptor of one named parameter of a saved model."""

    name: str
    shape: tuple[int, ...]

    @property
    def element_count(self) -> int:
        """Number of scalar elements of this parameter (product of shape)."""
        count = 1
        for d in self.shape:
            count *= d
        return count


@dataclass
class ModelEntry:
    """Catalog record for one saved (versioned) model.

    The parameter *values* live in a real heap table (``table_name``, one
    row per scalar element — the MADlib shape of models-as-tables); the
    catalog holds everything a scan of that table cannot reconstruct:
    parameter names and shapes, the producing algorithm, and free-form
    metadata.
    """

    name: str
    version: int
    algorithm: str
    table_name: str
    params: list[ModelParam] = field(default_factory=list)
    metadata: dict[str, Any] = field(default_factory=dict)


@dataclass
class AcceleratorEntry:
    """Catalog record for one compiled DAnA UDF.

    ``design`` is the hardware configuration produced by the hardware
    generator, ``strider_program`` the access-engine instructions, and
    ``execution_schedule`` the execution-engine micro-instruction schedule.
    They are stored opaquely so the catalog has no dependency on the
    compiler packages.
    """

    udf_name: str
    algorithm: str
    design: Any
    strider_program: Any
    execution_schedule: Any
    metadata: dict[str, Any] = field(default_factory=dict)


@dataclass
class RunEntry:
    """Catalog record for one recorded train / score / bench run.

    The *numeric* run facts (schedule-derived counters, span rollups,
    wall time) live in the ``repro_runs`` / ``repro_run_metrics`` heap
    tables — the database is its own telemetry backend — while the
    catalog holds everything a numeric heap scan cannot reconstruct:
    the run kind, labels, config, git revision, and the structured
    fault / retry record.
    """

    #: monotonically increasing run id (the heap tables' join key).
    run_id: int
    #: one of ``("train", "score", "bench", "refresh")``.
    kind: str
    #: human label: the UDF for training, the table for scoring, the
    #: sweep name for benches.
    label: str
    #: the scanned heap table, when the run scanned one.
    table_name: str = ""
    #: saved-model name/version the run produced or served, if any.
    model_name: str = ""
    model_version: int | None = None
    #: the algorithm behind the run's UDF/model, when known.
    algorithm: str = ""
    #: the invocation's configuration kwargs (JSON-friendly values).
    config: dict[str, Any] = field(default_factory=dict)
    #: ``git rev-parse --short HEAD`` at record time ("" when unknown).
    git_rev: str = ""
    #: ISO-8601 wall-clock timestamp at run start.
    started_at: str = ""
    #: end-to-end wall-clock seconds of the invocation.
    wall_seconds: float = 0.0
    #: fired injected faults during the run (``site``/``call``/``kind``
    #: dicts, from :class:`repro.reliability.faults.FaultLogEntry`).
    faults: list[dict] = field(default_factory=list)
    #: retry counters of the run (:class:`repro.reliability.retry.RetryStats`
    #: as a dict; empty when the run had no retry supervision).
    retry: dict[str, int] = field(default_factory=dict)
    #: statement-trace payload of an ``EXPLAIN ANALYZE`` run (rendered
    #: plan, operator tree, span dump) — empty unless a trace was
    #: attached via :meth:`repro.obs.recorder.RunRecorder.attach_trace`.
    trace: dict[str, Any] = field(default_factory=dict)


class Catalog:
    """In-memory system catalog shared by the engine and the accelerator."""

    def __init__(self) -> None:
        self._tables: dict[str, TableEntry] = {}
        self._accelerators: dict[str, AcceleratorEntry] = {}
        self._udf_handlers: dict[str, Any] = {}
        self._models: dict[str, dict[int, ModelEntry]] = {}
        self._runs: dict[int, RunEntry] = {}
        self._run_metric_ids: dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # tables
    # ------------------------------------------------------------------ #
    def register_table(self, entry: TableEntry) -> None:
        """Register a new table; raises CatalogError on duplicates."""
        if entry.name in self._tables:
            raise CatalogError(f"table {entry.name!r} already exists")
        self._tables[entry.name] = entry

    def drop_table(self, name: str) -> None:
        """Remove a table's catalog entry; raises CatalogError when missing."""
        if name not in self._tables:
            raise CatalogError(f"table {name!r} does not exist")
        del self._tables[name]

    def has_table(self, name: str) -> bool:
        """True when a table named ``name`` is registered."""
        return name in self._tables

    def table(self, name: str) -> TableEntry:
        """The catalog entry of ``name``; raises CatalogError when missing."""
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(f"table {name!r} does not exist") from None

    def tables(self) -> list[TableEntry]:
        """All table entries, sorted by name."""
        return [self._tables[k] for k in sorted(self._tables)]

    def update_tuple_count(self, name: str, tuple_count: int) -> None:
        """Record a table's tuple count after a bulk load."""
        self.table(name).tuple_count = tuple_count

    # ------------------------------------------------------------------ #
    # accelerator metadata (DAnA)
    # ------------------------------------------------------------------ #
    def register_accelerator(self, entry: AcceleratorEntry) -> None:
        """Store (or replace) a compiled UDF's accelerator metadata."""
        self._accelerators[entry.udf_name] = entry

    def has_accelerator(self, udf_name: str) -> bool:
        """True when accelerator metadata exists for ``udf_name``."""
        return udf_name in self._accelerators

    def accelerator(self, udf_name: str) -> AcceleratorEntry:
        """Accelerator metadata of a UDF; raises CatalogError when missing."""
        try:
            return self._accelerators[udf_name]
        except KeyError:
            raise CatalogError(
                f"no accelerator registered for UDF {udf_name!r}"
            ) from None

    def accelerators(self) -> list[AcceleratorEntry]:
        """All accelerator entries, sorted by UDF name."""
        return [self._accelerators[k] for k in sorted(self._accelerators)]

    # ------------------------------------------------------------------ #
    # saved models (prediction serving)
    # ------------------------------------------------------------------ #
    def register_model(self, entry: ModelEntry) -> None:
        """Register one saved model version; raises CatalogError on duplicates."""
        versions = self._models.setdefault(entry.name, {})
        if entry.version in versions:
            raise CatalogError(
                f"model {entry.name!r} version {entry.version} already exists"
            )
        versions[entry.version] = entry

    def has_model(self, name: str, version: int | None = None) -> bool:
        """True when the model (and, if given, the version) exists."""
        versions = self._models.get(name)
        if not versions:
            return False
        return version is None or version in versions

    def model(self, name: str, version: int | None = None) -> ModelEntry:
        """Look up a saved model (latest version when ``version`` is None)."""
        versions = self._models.get(name)
        if not versions:
            raise CatalogError(
                f"no saved model named {name!r}; available: {self.model_names()}"
            )
        if version is None:
            return versions[max(versions)]
        try:
            return versions[version]
        except KeyError:
            raise CatalogError(
                f"model {name!r} has no version {version}; "
                f"available versions: {sorted(versions)}"
            ) from None

    def drop_model(self, name: str, version: int | None = None) -> list[int]:
        """Remove a saved model's catalog entries.

        Args:
            name: the model name.
            version: one version to drop, or ``None`` for every version.

        Returns:
            The dropped version numbers, ascending.

        Raises:
            CatalogError: when the model (or the named version) does not
                exist.
        """
        versions = self._models.get(name)
        if not versions:
            raise CatalogError(
                f"no saved model named {name!r}; available: {self.model_names()}"
            )
        if version is None:
            dropped = sorted(versions)
            del self._models[name]
            return dropped
        if version not in versions:
            raise CatalogError(
                f"model {name!r} has no version {version}; "
                f"available versions: {sorted(versions)}"
            )
        del versions[version]
        if not versions:
            del self._models[name]
        return [version]

    def model_names(self) -> list[str]:
        """Names of all saved models, sorted."""
        return sorted(self._models)

    def model_versions(self, name: str) -> list[int]:
        """Saved versions of ``name``, ascending (empty when unknown)."""
        return sorted(self._models.get(name, ()))

    def models(self) -> list[ModelEntry]:
        """Every saved model version, sorted by (name, version)."""
        return [
            self._models[name][version]
            for name in sorted(self._models)
            for version in sorted(self._models[name])
        ]

    # ------------------------------------------------------------------ #
    # run history (observability)
    # ------------------------------------------------------------------ #
    def next_run_id(self) -> int:
        """The id the next recorded run will get (1-based, monotonic)."""
        return max(self._runs, default=0) + 1

    def register_run(self, entry: RunEntry) -> None:
        """Register one run record; raises CatalogError on duplicate ids."""
        if entry.run_id in self._runs:
            raise CatalogError(f"run {entry.run_id} already recorded")
        if entry.kind not in ("train", "score", "bench", "refresh"):
            raise CatalogError(
                f"unknown run kind {entry.kind!r}; "
                "expected 'train', 'score', 'bench' or 'refresh'"
            )
        self._runs[entry.run_id] = entry

    def has_run(self, run_id: int) -> bool:
        """True when a run with this id is recorded."""
        return run_id in self._runs

    def run(self, run_id: int) -> RunEntry:
        """The run record of ``run_id``; raises CatalogError when missing."""
        try:
            return self._runs[run_id]
        except KeyError:
            raise CatalogError(
                f"no recorded run with id {run_id}; "
                f"recorded: {sorted(self._runs)}"
            ) from None

    def runs(self) -> list[RunEntry]:
        """All recorded runs, ascending by run id."""
        return [self._runs[k] for k in sorted(self._runs)]

    def run_metric_id(self, name: str) -> int:
        """The stable integer id of a run-metric name (assigning it once).

        ``repro_run_metrics`` rows are purely numeric (the heap pages
        hold only fixed-width columns), so metric *names* map to small
        integers here, in assignment order.
        """
        metric_id = self._run_metric_ids.get(name)
        if metric_id is None:
            metric_id = len(self._run_metric_ids) + 1
            self._run_metric_ids[name] = metric_id
        return metric_id

    def run_metric_names(self) -> dict[int, str]:
        """The ``{metric_id: name}`` mapping for decoding metric scans."""
        return {v: k for k, v in self._run_metric_ids.items()}

    # ------------------------------------------------------------------ #
    # UDF handlers (black-box callables invoked by the executor)
    # ------------------------------------------------------------------ #
    def register_udf(self, name: str, handler: Any) -> None:
        """Register a callable invoked for ``SELECT * FROM dana.<name>(...)``."""
        self._udf_handlers[name] = handler

    def has_udf(self, name: str) -> bool:
        """True when a UDF handler named ``name`` is registered."""
        return name in self._udf_handlers

    def udf(self, name: str) -> Any:
        """The handler of a registered UDF; raises CatalogError when missing."""
        try:
            return self._udf_handlers[name]
        except KeyError:
            raise CatalogError(f"no UDF named {name!r} is registered") from None

    def udf_names(self) -> list[str]:
        """Names of all registered UDF handlers, sorted."""
        return sorted(self._udf_handlers)
