"""System catalog.

Besides the usual table metadata, the catalog is where DAnA stores the
generated accelerator artefacts: "DAnA stores accelerator metadata (Strider
and execution engine instruction schedules) in the RDBMS's catalog along
with the name of a UDF to be invoked from the query" (§3).  The catalog is
therefore shared between the database engine and the (simulated) FPGA.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.exceptions import CatalogError
from repro.rdbms.page import PageLayout
from repro.rdbms.types import Schema


@dataclass
class TableEntry:
    """Catalog record for one table."""

    name: str
    schema: Schema
    file_name: str
    layout: PageLayout
    tuple_count: int = 0


@dataclass
class AcceleratorEntry:
    """Catalog record for one compiled DAnA UDF.

    ``design`` is the hardware configuration produced by the hardware
    generator, ``strider_program`` the access-engine instructions, and
    ``execution_schedule`` the execution-engine micro-instruction schedule.
    They are stored opaquely so the catalog has no dependency on the
    compiler packages.
    """

    udf_name: str
    algorithm: str
    design: Any
    strider_program: Any
    execution_schedule: Any
    metadata: dict[str, Any] = field(default_factory=dict)


class Catalog:
    """In-memory system catalog shared by the engine and the accelerator."""

    def __init__(self) -> None:
        self._tables: dict[str, TableEntry] = {}
        self._accelerators: dict[str, AcceleratorEntry] = {}
        self._udf_handlers: dict[str, Any] = {}

    # ------------------------------------------------------------------ #
    # tables
    # ------------------------------------------------------------------ #
    def register_table(self, entry: TableEntry) -> None:
        if entry.name in self._tables:
            raise CatalogError(f"table {entry.name!r} already exists")
        self._tables[entry.name] = entry

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise CatalogError(f"table {name!r} does not exist")
        del self._tables[name]

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def table(self, name: str) -> TableEntry:
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(f"table {name!r} does not exist") from None

    def tables(self) -> list[TableEntry]:
        return [self._tables[k] for k in sorted(self._tables)]

    def update_tuple_count(self, name: str, tuple_count: int) -> None:
        self.table(name).tuple_count = tuple_count

    # ------------------------------------------------------------------ #
    # accelerator metadata (DAnA)
    # ------------------------------------------------------------------ #
    def register_accelerator(self, entry: AcceleratorEntry) -> None:
        self._accelerators[entry.udf_name] = entry

    def has_accelerator(self, udf_name: str) -> bool:
        return udf_name in self._accelerators

    def accelerator(self, udf_name: str) -> AcceleratorEntry:
        try:
            return self._accelerators[udf_name]
        except KeyError:
            raise CatalogError(
                f"no accelerator registered for UDF {udf_name!r}"
            ) from None

    def accelerators(self) -> list[AcceleratorEntry]:
        return [self._accelerators[k] for k in sorted(self._accelerators)]

    # ------------------------------------------------------------------ #
    # UDF handlers (black-box callables invoked by the executor)
    # ------------------------------------------------------------------ #
    def register_udf(self, name: str, handler: Any) -> None:
        """Register a callable invoked for ``SELECT * FROM dana.<name>(...)``."""
        self._udf_handlers[name] = handler

    def has_udf(self, name: str) -> bool:
        return name in self._udf_handlers

    def udf(self, name: str) -> Any:
        try:
            return self._udf_handlers[name]
        except KeyError:
            raise CatalogError(f"no UDF named {name!r} is registered") from None

    def udf_names(self) -> list[str]:
        return sorted(self._udf_handlers)
