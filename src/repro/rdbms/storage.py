"""Simulated storage manager.

The storage manager keeps every heap file as an in-memory list of binary
page images and records how many page reads and writes were issued.  The
counts feed the I/O portion of the end-to-end runtime model
(:mod:`repro.perf.io_model`): the paper's cold-cache experiments are
dominated by the time needed to pull training pages from an SSD into the
buffer pool, which we model analytically from the observed page-read count.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import StorageError


@dataclass
class StorageStats:
    """Counters of physical page I/O issued against the storage manager."""

    page_reads: int = 0
    page_writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    def reset(self) -> None:
        """Zero the read/write counters."""
        self.page_reads = 0
        self.page_writes = 0
        self.bytes_read = 0
        self.bytes_written = 0


@dataclass
class _FileEntry:
    page_size: int
    pages: list[bytes] = field(default_factory=list)


class StorageManager:
    """Holds heap files and accounts for physical page I/O.

    Files are identified by name (one per table).  Pages within a file are
    addressed by a zero-based page number.
    """

    def __init__(self) -> None:
        self._files: dict[str, _FileEntry] = {}
        self.stats = StorageStats()

    # ------------------------------------------------------------------ #
    # file management
    # ------------------------------------------------------------------ #
    def create_file(self, name: str, page_size: int) -> None:
        """Create an empty page file; raises StorageError on duplicates."""
        if name in self._files:
            raise StorageError(f"file {name!r} already exists")
        self._files[name] = _FileEntry(page_size=page_size)

    def drop_file(self, name: str) -> None:
        """Delete a page file; raises StorageError when missing."""
        if name not in self._files:
            raise StorageError(f"file {name!r} does not exist")
        del self._files[name]

    def has_file(self, name: str) -> bool:
        """True when a page file named ``name`` exists."""
        return name in self._files

    def file_names(self) -> list[str]:
        """Names of all page files, sorted."""
        return sorted(self._files)

    def _entry(self, name: str) -> _FileEntry:
        try:
            return self._files[name]
        except KeyError:
            raise StorageError(f"file {name!r} does not exist") from None

    def page_count(self, name: str) -> int:
        """Number of pages in a file."""
        return len(self._entry(name).pages)

    def page_size(self, name: str) -> int:
        """Page size of a file in bytes (0 for an empty file)."""
        return self._entry(name).page_size

    def file_bytes(self, name: str) -> int:
        """Total bytes stored in a file."""
        entry = self._entry(name)
        return len(entry.pages) * entry.page_size

    # ------------------------------------------------------------------ #
    # page I/O
    # ------------------------------------------------------------------ #
    def append_page(self, name: str, image: bytes) -> int:
        """Append a page image to the file; returns its page number."""
        entry = self._entry(name)
        if len(image) != entry.page_size:
            raise StorageError(
                f"page image is {len(image)} bytes, file {name!r} uses "
                f"{entry.page_size}-byte pages"
            )
        entry.pages.append(bytes(image))
        self.stats.page_writes += 1
        self.stats.bytes_written += len(image)
        return len(entry.pages) - 1

    def write_page(self, name: str, page_no: int, image: bytes) -> None:
        """Overwrite an existing page."""
        entry = self._entry(name)
        if not 0 <= page_no < len(entry.pages):
            raise StorageError(f"page {page_no} out of range for file {name!r}")
        if len(image) != entry.page_size:
            raise StorageError(
                f"page image is {len(image)} bytes, file {name!r} uses "
                f"{entry.page_size}-byte pages"
            )
        entry.pages[page_no] = bytes(image)
        self.stats.page_writes += 1
        self.stats.bytes_written += len(image)

    def read_page(self, name: str, page_no: int) -> bytes:
        """Read a page image, counting the physical I/O."""
        entry = self._entry(name)
        if not 0 <= page_no < len(entry.pages):
            raise StorageError(f"page {page_no} out of range for file {name!r}")
        self.stats.page_reads += 1
        self.stats.bytes_read += entry.page_size
        return entry.pages[page_no]
