"""Heap files: sequences of slotted pages backing one table."""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.exceptions import RDBMSError
from repro.rdbms.buffer_pool import BufferPool
from repro.rdbms.page import HeapPage, PageLayout
from repro.rdbms.storage import StorageManager
from repro.rdbms.types import Schema


def decode_page_rows(image: bytes, layout: PageLayout, schema: Schema) -> np.ndarray:
    """Decode one raw page image into a ``(tuples, columns)`` float64 matrix.

    The RDBMS-side per-page decode shared by every ``use_striders=False``
    path (training segment workers, the serving scan scorer) — one
    implementation so the CPU-decode model cannot drift between them.
    """
    tuples = list(HeapPage.from_bytes(image, layout).tuples(schema))
    if not tuples:
        return np.empty((0, len(schema)))
    return np.asarray(tuples, dtype=np.float64)


class HeapFile:
    """A table's on-"disk" representation as a sequence of heap pages.

    Bulk loading packs tuples densely in insertion order, matching how the
    paper's training tables are produced (a single ``COPY``/``INSERT`` pass
    before the experiment).  Reads always go through the buffer pool so that
    warm/cold cache behaviour and I/O counts are observable.
    """

    def __init__(
        self,
        name: str,
        schema: Schema,
        storage: StorageManager,
        layout: PageLayout | None = None,
    ) -> None:
        self.name = name
        self.schema = schema
        self.storage = storage
        self.layout = layout or PageLayout()
        if not storage.has_file(name):
            storage.create_file(name, self.layout.page_size)
        self._tuple_count = 0

    # ------------------------------------------------------------------ #
    # properties
    # ------------------------------------------------------------------ #
    @property
    def tuple_count(self) -> int:
        """Total tuples stored across all pages."""
        return self._tuple_count

    @property
    def page_count(self) -> int:
        """Number of heap pages in the file."""
        return self.storage.page_count(self.name)

    @property
    def size_bytes(self) -> int:
        """Total on-disk size of the file in bytes."""
        return self.storage.file_bytes(self.name)

    def tuples_per_page(self) -> int:
        """How many tuples of this schema fit on one page."""
        return self.layout.tuples_per_page(self.schema)

    # ------------------------------------------------------------------ #
    # loading
    # ------------------------------------------------------------------ #
    def bulk_load(self, rows: Iterable[Sequence[float | int]]) -> int:
        """Append rows, packing them densely into pages.  Returns row count."""
        page = HeapPage(self.layout)
        loaded = 0
        for row in rows:
            if not page.has_room(self.schema):
                self.storage.append_page(self.name, page.to_bytes())
                page = HeapPage(self.layout)
            page.insert(self.schema, row)
            loaded += 1
        if page.tuple_count > 0:
            self.storage.append_page(self.name, page.to_bytes())
        self._tuple_count += loaded
        return loaded

    def bulk_load_array(self, data: np.ndarray) -> int:
        """Bulk load a 2-D NumPy array where each row is one tuple."""
        if data.ndim != 2:
            raise RDBMSError(f"expected a 2-D array, got shape {data.shape}")
        if data.shape[1] != len(self.schema):
            raise RDBMSError(
                f"array has {data.shape[1]} columns but schema has {len(self.schema)}"
            )
        return self.bulk_load(data.tolist())

    # ------------------------------------------------------------------ #
    # scanning
    # ------------------------------------------------------------------ #
    def scan_pages(
        self, pool: BufferPool, page_nos: Sequence[int] | None = None
    ) -> Iterator[tuple[int, bytes]]:
        """Yield ``(page_no, raw_page_image)`` via the pool.

        ``page_nos`` restricts the scan to one partition's pages (the
        sharded execution subsystem assigns each segment a subset of the
        heap); the default scans every page in storage order.
        """
        if page_nos is None:
            page_nos = range(self.page_count)
        page_count = self.page_count
        for page_no in page_nos:
            if not 0 <= page_no < page_count:
                raise RDBMSError(
                    f"page {page_no} is out of range for table {self.name!r} "
                    f"({page_count} pages)"
                )
            yield page_no, pool.get_page(self.name, page_no)

    def scan_tuples(self, pool: BufferPool) -> Iterator[tuple[float | int, ...]]:
        """Yield decoded tuples in storage order via the buffer pool."""
        for _page_no, image in self.scan_pages(pool):
            page = HeapPage.from_bytes(image, self.layout)
            yield from page.tuples(self.schema)

    def read_all(self, pool: BufferPool) -> np.ndarray:
        """Materialise the whole table as a float64 NumPy array."""
        rows = list(self.scan_tuples(pool))
        if not rows:
            return np.empty((0, len(self.schema)))
        return np.asarray(rows, dtype=np.float64)
