"""Heap files: sequences of slotted pages backing one table.

Mutability and snapshots
------------------------
A heap file starts frozen (``bulk_load`` packs LSN-0 pages) and becomes
*live* the first time a WAL record is applied through :meth:`append_rows`.
Every mutation stamps the touched pages with the record's LSN and saves a
copy-on-write pre-image of any page it overwrites, so a scan can be pinned
to the heap *as of* any LSN: :meth:`scan_pages` with ``as_of_lsn=s`` yields
exactly the pages — and exactly the bytes — a scan started at LSN ``s``
would have seen, no matter how many inserts land afterwards.  Historical
pre-images are served from the version store and bypass the buffer pool
(only live images are cached); pool statistics are observational and are
not part of any bit-identity contract.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.exceptions import RDBMSError
from repro.rdbms.buffer_pool import BufferPool
from repro.rdbms.page import HeapPage, PageLayout
from repro.rdbms.storage import StorageManager
from repro.rdbms.types import Schema


def decode_page_rows(image: bytes, layout: PageLayout, schema: Schema) -> np.ndarray:
    """Decode one raw page image into a ``(tuples, columns)`` float64 matrix.

    The RDBMS-side per-page decode shared by every ``use_striders=False``
    path (training segment workers, the serving scan scorer) — one
    implementation so the CPU-decode model cannot drift between them.
    """
    tuples = list(HeapPage.from_bytes(image, layout).tuples(schema))
    if not tuples:
        return np.empty((0, len(schema)))
    return np.asarray(tuples, dtype=np.float64)


class HeapFile:
    """A table's on-"disk" representation as a sequence of heap pages.

    Bulk loading packs tuples densely in insertion order, matching how the
    paper's training tables are produced (a single ``COPY``/``INSERT`` pass
    before the experiment).  Reads always go through the buffer pool so that
    warm/cold cache behaviour and I/O counts are observable.
    """

    def __init__(
        self,
        name: str,
        schema: Schema,
        storage: StorageManager,
        layout: PageLayout | None = None,
    ) -> None:
        self.name = name
        self.schema = schema
        self.storage = storage
        self.layout = layout or PageLayout()
        if not storage.has_file(name):
            storage.create_file(name, self.layout.page_size)
        self._tuple_count = 0
        #: LSN stamp of each *live* page image, in page order.
        self._page_lsns: list[int] = []
        #: LSN at which each page was first appended (nondecreasing).
        self._page_create_lsns: list[int] = []
        #: copy-on-write pre-images: page_no -> [(lsn, image), ...] in
        #: ascending-LSN order; saved just before a page is overwritten.
        self._page_versions: dict[int, list[tuple[int, bytes]]] = {}
        #: ``(lsn, total_tuple_count)`` history for as-of tuple counts.
        self._count_history: list[tuple[int, int]] = [(0, 0)]
        #: True once a WAL record mutated this file (bulk_load then forbidden).
        self._wal_mutated = False
        #: serializes WAL applies against snapshot reads: an as-of page
        #: pull must see the live-LSN check and the image read atomically
        #: with respect to a concurrent tail-page overwrite.
        self._mutate_lock = threading.RLock()

    # ------------------------------------------------------------------ #
    # properties
    # ------------------------------------------------------------------ #
    @property
    def tuple_count(self) -> int:
        """Total tuples stored across all pages."""
        return self._tuple_count

    @property
    def page_count(self) -> int:
        """Number of heap pages in the file."""
        return self.storage.page_count(self.name)

    @property
    def size_bytes(self) -> int:
        """Total on-disk size of the file in bytes."""
        return self.storage.file_bytes(self.name)

    def tuples_per_page(self) -> int:
        """How many tuples of this schema fit on one page."""
        return self.layout.tuples_per_page(self.schema)

    # ------------------------------------------------------------------ #
    # loading
    # ------------------------------------------------------------------ #
    def bulk_load(self, rows: Iterable[Sequence[float | int]]) -> int:
        """Append rows, packing them densely into pages.  Returns row count.

        Bulk loads are the LSN-0 base image (an implicit checkpoint): they
        always start a fresh page and never stamp an LSN, so recovery can
        rebuild the durable base by re-running the same loads.  Once a WAL
        record has mutated the file, further bulk loads are rejected — all
        later writes must flow through the log (:meth:`append_rows`) so the
        per-table LSN history stays monotonic.
        """
        if self._wal_mutated:
            raise RDBMSError(
                f"table {self.name!r} has WAL-logged writes; use "
                "Database.insert_rows instead of bulk_load"
            )
        page = HeapPage(self.layout)
        loaded = 0
        for row in rows:
            if not page.has_room(self.schema):
                self.storage.append_page(self.name, page.to_bytes())
                page = HeapPage(self.layout)
            page.insert(self.schema, row)
            loaded += 1
        if page.tuple_count > 0:
            self.storage.append_page(self.name, page.to_bytes())
        self._tuple_count += loaded
        new_pages = self.page_count - len(self._page_lsns)
        self._page_lsns.extend([0] * new_pages)
        self._page_create_lsns.extend([0] * new_pages)
        self._count_history[0] = (0, self._tuple_count)
        return loaded

    def bulk_load_array(self, data: np.ndarray) -> int:
        """Bulk load a 2-D NumPy array where each row is one tuple."""
        if data.ndim != 2:
            raise RDBMSError(f"expected a 2-D array, got shape {data.shape}")
        if data.shape[1] != len(self.schema):
            raise RDBMSError(
                f"array has {data.shape[1]} columns but schema has {len(self.schema)}"
            )
        return self.bulk_load(data.tolist())

    # ------------------------------------------------------------------ #
    # WAL apply (the only write path for live tables)
    # ------------------------------------------------------------------ #
    def append_rows(
        self,
        rows: Sequence[Sequence[float | int]],
        lsn: int,
        pool: BufferPool | None = None,
    ) -> int:
        """Apply one WAL record's rows, stamping touched pages with ``lsn``.

        This is the shared apply primitive: both a live ``INSERT`` and WAL
        replay route the *same record* through this function, so the heap
        bytes (LSN stamps included) are bit-identical by construction.  The
        tail page is filled first — its pre-image is pushed into the
        copy-on-write version store so in-flight snapshot scans keep seeing
        the bytes they started with — then fresh LSN-stamped pages are
        appended.  ``pool`` (when given) has its cached frame for the
        rewritten tail page invalidated.
        """
        rows = list(rows)
        if not rows:
            return 0
        with self._mutate_lock:
            last_lsn = self._count_history[-1][0]
            if lsn <= last_lsn:
                raise RDBMSError(
                    f"WAL apply out of order on table {self.name!r}: record LSN "
                    f"{lsn} is not past the last applied LSN {last_lsn}"
                )
            self._wal_mutated = True
            idx = 0
            page_count = self.page_count
            if page_count > 0:
                tail_no = page_count - 1
                image = self.storage.read_page(self.name, tail_no)
                page = HeapPage.from_bytes(image, self.layout)
                if page.has_room(self.schema):
                    self._page_versions.setdefault(tail_no, []).append(
                        (self._page_lsns[tail_no], bytes(image))
                    )
                    while idx < len(rows) and page.has_room(self.schema):
                        page.insert(self.schema, rows[idx])
                        idx += 1
                    page.set_lsn(lsn)
                    self.storage.write_page(self.name, tail_no, page.to_bytes())
                    self._page_lsns[tail_no] = lsn
                    if pool is not None:
                        pool.invalidate(self.name, tail_no)
            while idx < len(rows):
                page = HeapPage(self.layout)
                while idx < len(rows) and page.has_room(self.schema):
                    page.insert(self.schema, rows[idx])
                    idx += 1
                page.set_lsn(lsn)
                self.storage.append_page(self.name, page.to_bytes())
                self._page_lsns.append(lsn)
                self._page_create_lsns.append(lsn)
            self._tuple_count += len(rows)
            self._count_history.append((lsn, self._tuple_count))
            return len(rows)

    # ------------------------------------------------------------------ #
    # snapshot (as-of) readers
    # ------------------------------------------------------------------ #
    def page_lsn(self, page_no: int) -> int:
        """LSN stamp of the live image of ``page_no`` (0 = bulk load)."""
        if not 0 <= page_no < len(self._page_lsns):
            raise RDBMSError(
                f"page {page_no} is out of range for table {self.name!r} "
                f"({len(self._page_lsns)} pages)"
            )
        return self._page_lsns[page_no]

    def page_count_as_of(self, as_of_lsn: int) -> int:
        """Number of pages that existed at LSN ``as_of_lsn``."""
        return bisect_right(self._page_create_lsns, as_of_lsn)

    def tuple_count_as_of(self, as_of_lsn: int) -> int:
        """Total tuples the table held at LSN ``as_of_lsn``."""
        lsns = [lsn for lsn, _count in self._count_history]
        i = bisect_right(lsns, as_of_lsn)
        return self._count_history[i - 1][1] if i else 0

    def page_lsn_as_of(self, page_no: int, as_of_lsn: int) -> int:
        """LSN stamp ``page_no`` carried at LSN ``as_of_lsn``."""
        live = self.page_lsn(page_no)
        if live <= as_of_lsn:
            return live
        best: int | None = None
        for lsn, _image in self._page_versions.get(page_no, ()):
            if lsn <= as_of_lsn:
                best = lsn
            else:
                break
        if best is None:
            raise RDBMSError(
                f"page {page_no} of table {self.name!r} has no version at "
                f"or before LSN {as_of_lsn}"
            )
        return best

    def page_image_as_of(
        self, page_no: int, as_of_lsn: int, pool: BufferPool
    ) -> bytes:
        """The bytes ``page_no`` held at LSN ``as_of_lsn``.

        Live images are served through the buffer pool; overwritten
        pre-images come from the copy-on-write version store (and bypass
        the pool — only live pages are cached).  The read holds the
        table's mutate lock so a concurrent WAL apply cannot overwrite
        the tail page between the live-LSN check and the pool pull.
        """
        with self._mutate_lock:
            live = self.page_lsn(page_no)
            if live <= as_of_lsn:
                return pool.get_page(self.name, page_no)
            best: bytes | None = None
            for lsn, image in self._page_versions.get(page_no, ()):
                if lsn <= as_of_lsn:
                    best = image
                else:
                    break
            if best is None:
                raise RDBMSError(
                    f"page {page_no} of table {self.name!r} has no version "
                    f"at or before LSN {as_of_lsn}"
                )
            return best

    def pages_newer_than(self, watermark_lsn: int, as_of_lsn: int) -> list[int]:
        """Pages (as of ``as_of_lsn``) stamped past ``watermark_lsn``.

        The incremental-refresh scan set: every page whose as-of image
        carries rows logged after the model's watermark.  The tail page a
        watermark-era record partially filled re-appears here once later
        inserts restamp it, so a refresh may re-train a few pre-watermark
        rows — that is the documented page-granular semantics.
        """
        return [
            page_no
            for page_no in range(self.page_count_as_of(as_of_lsn))
            if self.page_lsn_as_of(page_no, as_of_lsn) > watermark_lsn
        ]

    # ------------------------------------------------------------------ #
    # scanning
    # ------------------------------------------------------------------ #
    def scan_pages(
        self,
        pool: BufferPool,
        page_nos: Sequence[int] | None = None,
        as_of_lsn: int | None = None,
    ) -> Iterator[tuple[int, bytes]]:
        """Yield ``(page_no, raw_page_image)`` via the pool.

        ``page_nos`` restricts the scan to one partition's pages (the
        sharded execution subsystem assigns each segment a subset of the
        heap); the default scans every page in storage order.

        ``as_of_lsn`` pins the scan to a snapshot: only pages that existed
        at that LSN are visible, and each image is the bytes the page held
        then (overwritten tail pages are served from the copy-on-write
        version store).  ``None`` scans the live heap.
        """
        if as_of_lsn is None:
            page_count = self.page_count
        else:
            page_count = self.page_count_as_of(as_of_lsn)
        if page_nos is None:
            page_nos = range(page_count)
        for page_no in page_nos:
            if not 0 <= page_no < page_count:
                raise RDBMSError(
                    f"page {page_no} is out of range for table {self.name!r} "
                    f"({page_count} pages)"
                )
            if as_of_lsn is None:
                yield page_no, pool.get_page(self.name, page_no)
            else:
                yield page_no, self.page_image_as_of(page_no, as_of_lsn, pool)

    def scan_tuples(
        self, pool: BufferPool, as_of_lsn: int | None = None
    ) -> Iterator[tuple[float | int, ...]]:
        """Yield decoded tuples in storage order via the buffer pool."""
        for _page_no, image in self.scan_pages(pool, as_of_lsn=as_of_lsn):
            page = HeapPage.from_bytes(image, self.layout)
            yield from page.tuples(self.schema)

    def read_all(
        self, pool: BufferPool, as_of_lsn: int | None = None
    ) -> np.ndarray:
        """Materialise the whole table as a float64 NumPy array."""
        rows = list(self.scan_tuples(pool, as_of_lsn=as_of_lsn))
        if not rows:
            return np.empty((0, len(self.schema)))
        return np.asarray(rows, dtype=np.float64)

    def read_pages(
        self,
        pool: BufferPool,
        page_nos: Sequence[int],
        as_of_lsn: int | None = None,
    ) -> np.ndarray:
        """Materialise a subset of pages as a float64 array (storage order).

        The CPU-decode twin of a partial :meth:`scan_pages`: incremental
        refresh uses it to train on only the pages past a model's
        watermark when Striders are disabled.
        """
        rows: list[tuple[float | int, ...]] = []
        for _page_no, image in self.scan_pages(
            pool, list(page_nos), as_of_lsn=as_of_lsn
        ):
            page = HeapPage.from_bytes(image, self.layout)
            rows.extend(page.tuples(self.schema))
        if not rows:
            return np.empty((0, len(self.schema)))
        return np.asarray(rows, dtype=np.float64)
