"""Database facade tying together storage, buffer pool, catalog and queries.

This is the "PostgreSQL" of the reproduction: enough of an RDBMS engine to
create training tables, bulk load them, serve sequential scans through a
buffer pool and invoke UDFs from SQL, which is all the paper's experiments
exercise.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import CatalogError, RDBMSError
from repro.rdbms.buffer_pool import DEFAULT_POOL_BYTES, BufferPool
from repro.rdbms.catalog import AcceleratorEntry, Catalog, TableEntry
from repro.rdbms.heapfile import HeapFile
from repro.rdbms.page import DEFAULT_PAGE_SIZE, PageLayout
from repro.rdbms.query import QueryExecutor, QueryResult
from repro.rdbms.storage import StorageManager
from repro.rdbms.types import Schema
from repro.rdbms.wal import WalRecord, WriteAheadLog


class Database:
    """A single-node database instance with a buffer pool and catalog."""

    def __init__(
        self,
        page_size: int = DEFAULT_PAGE_SIZE,
        buffer_pool_bytes: int = DEFAULT_POOL_BYTES,
    ) -> None:
        self.page_size = page_size
        self.layout = PageLayout(page_size=page_size)
        self.storage = StorageManager()
        self.buffer_pool = BufferPool(
            self.storage, pool_bytes=buffer_pool_bytes, page_size=page_size
        )
        self.catalog = Catalog()
        self.executor = QueryExecutor(self)
        self.wal = WriteAheadLog()
        self._heapfiles: dict[str, HeapFile] = {}
        #: the attached DAnA system (set by ``DAnA.__init__``); SQL
        #: prediction and CREATE MODEL statements execute against it.
        self.serving_runtime = None

    # ------------------------------------------------------------------ #
    # DDL / DML
    # ------------------------------------------------------------------ #
    def create_table(self, name: str, schema: Schema) -> HeapFile:
        """Create an empty table and register it in the catalog."""
        if self.catalog.has_table(name):
            raise CatalogError(f"table {name!r} already exists")
        heapfile = HeapFile(name, schema, self.storage, self.layout)
        self._heapfiles[name] = heapfile
        self.catalog.register_table(
            TableEntry(name=name, schema=schema, file_name=name, layout=self.layout)
        )
        return heapfile

    def drop_table(self, name: str) -> None:
        """Drop a table: catalog entry, storage file and heap-file handle."""
        self.catalog.drop_table(name)
        self.storage.drop_file(name)
        del self._heapfiles[name]

    def load_table(
        self,
        name: str,
        schema: Schema,
        rows: Iterable[Sequence[float | int]] | np.ndarray,
    ) -> HeapFile:
        """Create a table and bulk load it in one step."""
        heapfile = self.create_table(name, schema)
        if isinstance(rows, np.ndarray):
            loaded = heapfile.bulk_load_array(rows)
        else:
            loaded = heapfile.bulk_load(rows)
        self.catalog.update_tuple_count(name, loaded)
        return heapfile

    def insert_rows(
        self, name: str, rows: Sequence[Sequence[float | int]] | np.ndarray
    ) -> WalRecord:
        """WAL-logged insert: log first, then stamp the rows into the heap.

        The write path for *live* tables: the record is made durable by
        :meth:`WriteAheadLog.append` (which fires the ``rdbms.wal.append``
        fault site on both sides of durability), then applied through
        :meth:`apply_wal_record` — the same function replay uses, so a
        recovered heap is bit-identical to this one.  Returns the record.
        """
        entry = self.catalog.table(name)
        if isinstance(rows, np.ndarray):
            if rows.ndim != 2:
                raise RDBMSError(f"expected a 2-D array, got shape {rows.shape}")
            rows = rows.tolist()
        rows = [tuple(row) for row in rows]
        if not rows:
            raise RDBMSError(f"cannot insert zero rows into {name!r}")
        width = len(entry.schema)
        for row in rows:
            if len(row) != width:
                raise RDBMSError(
                    f"row has {len(row)} values but table {name!r} has "
                    f"{width} columns"
                )
        record = self.wal.append(name, rows)
        self.apply_wal_record(record)
        return record

    def apply_wal_record(self, record: WalRecord) -> None:
        """Apply one WAL record to the heap (live insert and replay path).

        Idempotence is the caller's contract (replay applies each record
        once against a freshly bulk-loaded base); this method just stamps
        the rows in, invalidates the rewritten tail page in the buffer
        pool, adopts the record into this database's own log, and bumps
        the catalog tuple count.
        """
        heapfile = self.table(record.table)
        self.wal.adopt(record)
        heapfile.append_rows(record.rows, record.lsn, self.buffer_pool)
        self.catalog.update_tuple_count(record.table, heapfile.tuple_count)

    def drop_model(self, name: str, version: int | None = None) -> list[int]:
        """Drop a saved model: its parameter heap tables and catalog entries.

        Args:
            name: the saved model's name.
            version: one version to drop, or ``None`` for all versions.

        Returns:
            The dropped version numbers, ascending.

        Raises:
            CatalogError: when the model or the named version is missing.
        """
        entries = [
            self.catalog.model(name, v)
            for v in (
                self.catalog.model_versions(name) if version is None else [version]
            )
        ]
        dropped = self.catalog.drop_model(name, version)
        for entry in entries:
            if self.catalog.has_table(entry.table_name):
                self.drop_table(entry.table_name)
        return dropped

    def table(self, name: str) -> HeapFile:
        """The heap file of ``name``; raises CatalogError when missing."""
        try:
            return self._heapfiles[name]
        except KeyError:
            raise CatalogError(f"table {name!r} does not exist") from None

    def table_names(self) -> list[str]:
        """Names of all tables, sorted."""
        return sorted(self._heapfiles)

    # ------------------------------------------------------------------ #
    # queries and UDFs
    # ------------------------------------------------------------------ #
    def execute(self, sql: str) -> QueryResult:
        """Parse and execute a SQL statement."""
        return self.executor.execute(sql)

    def register_udf(self, name: str, handler) -> None:
        """Register a UDF callable invocable as ``SELECT * FROM dana.<name>(...)``."""
        self.catalog.register_udf(name, handler)

    def attach_serving_runtime(self, runtime) -> None:
        """Attach the DAnA system SQL serving statements execute against.

        Args:
            runtime: an object implementing
                :class:`repro.rdbms.query.ServingRuntime` (normally a
                :class:`repro.core.DAnA` instance, which calls this in its
                constructor).  The latest attachment wins.
        """
        self.serving_runtime = runtime

    def register_accelerator(self, entry: AcceleratorEntry) -> None:
        """Store compiled accelerator metadata in the catalog."""
        self.catalog.register_accelerator(entry)

    # ------------------------------------------------------------------ #
    # cache control (warm / cold experiments)
    # ------------------------------------------------------------------ #
    def warm_cache(self, table_name: str) -> int:
        """Prefetch a table into the buffer pool; returns resident pages."""
        return self.buffer_pool.prefetch_table(table_name)

    def cold_cache(self) -> None:
        """Drop all cached pages so the next scan pays full I/O."""
        self.buffer_pool.clear()

    def reset_io_stats(self) -> None:
        """Zero the buffer pool's hit/miss counters."""
        self.buffer_pool.reset_stats()
