"""Miniature RDBMS substrate with a PostgreSQL-style storage layer.

This package provides everything DAnA needs from the host database: binary
heap pages, heap files, a buffer pool, a catalog shared with the
accelerator, and a small SQL front end that can invoke UDFs.
"""

from repro.rdbms.buffer_pool import BufferPool, BufferPoolStats
from repro.rdbms.catalog import (
    AcceleratorEntry,
    Catalog,
    ModelEntry,
    ModelParam,
    TableEntry,
)
from repro.rdbms.database import Database
from repro.rdbms.heapfile import HeapFile, decode_page_rows
from repro.rdbms.heaptuple import TUPLE_HEADER_SIZE, TupleHeader, decode_tuple, encode_tuple
from repro.rdbms.page import (
    DEFAULT_PAGE_SIZE,
    LINE_POINTER_SIZE,
    PAGE_HEADER_SIZE,
    SUPPORTED_PAGE_SIZES,
    HeapPage,
    PageLayout,
)
from repro.rdbms.query import (
    Comparison,
    CountScan,
    CreateModel,
    DropModel,
    PredictScan,
    QueryExecutor,
    QueryResult,
    ScoreCall,
    SeqScan,
    ServingRuntime,
    ShowModels,
    Token,
    UDFCall,
    caret_message,
    matches_row,
    parse,
    tokenize,
)
from repro.rdbms.storage import StorageManager, StorageStats
from repro.rdbms.types import Column, ColumnType, Schema
from repro.rdbms.wal import WAL_APPEND_FAULT_SITE, WalRecord, WriteAheadLog

__all__ = [
    "AcceleratorEntry",
    "BufferPool",
    "BufferPoolStats",
    "Catalog",
    "Column",
    "ColumnType",
    "Comparison",
    "CountScan",
    "CreateModel",
    "Database",
    "DropModel",
    "DEFAULT_PAGE_SIZE",
    "HeapFile",
    "HeapPage",
    "LINE_POINTER_SIZE",
    "ModelEntry",
    "ModelParam",
    "PAGE_HEADER_SIZE",
    "PageLayout",
    "PredictScan",
    "QueryExecutor",
    "QueryResult",
    "Schema",
    "ScoreCall",
    "SeqScan",
    "ServingRuntime",
    "ShowModels",
    "StorageManager",
    "StorageStats",
    "SUPPORTED_PAGE_SIZES",
    "TableEntry",
    "Token",
    "TUPLE_HEADER_SIZE",
    "TupleHeader",
    "UDFCall",
    "WAL_APPEND_FAULT_SITE",
    "WalRecord",
    "WriteAheadLog",
    "caret_message",
    "decode_page_rows",
    "decode_tuple",
    "encode_tuple",
    "matches_row",
    "parse",
    "tokenize",
]
