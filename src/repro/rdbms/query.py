"""Minimal SQL front end: parser, logical plan and executor.

Only the query shapes the paper uses are supported:

* ``SELECT * FROM <table>`` — sequential scan of a training table.
* ``SELECT * FROM dana.<udf>('<table>')`` — invoke a registered UDF (the
  DAnA accelerator, MADlib baseline, ...) as a black box over a table, as in
  §4.3 of the paper.

The executor mirrors the classic parse → plan → execute pipeline from
Figure 2; the UDF itself is opaque to the engine, which only resolves the
table, hands over the buffer pool and collects the result.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Protocol

from repro.exceptions import QueryError

_SELECT_UDF_RE = re.compile(
    r"^\s*select\s+\*\s+from\s+dana\.(?P<udf>[A-Za-z_][\w]*)\s*\(\s*"
    r"'(?P<table>[^']+)'\s*\)\s*;?\s*$",
    re.IGNORECASE,
)
_SELECT_SCAN_RE = re.compile(
    r"^\s*select\s+(?P<cols>\*|[\w,\s]+)\s+from\s+(?P<table>[A-Za-z_][\w]*)\s*;?\s*$",
    re.IGNORECASE,
)
_SELECT_COUNT_RE = re.compile(
    r"^\s*select\s+count\s*\(\s*\*\s*\)\s+from\s+(?P<table>[A-Za-z_][\w]*)\s*;?\s*$",
    re.IGNORECASE,
)


@dataclass(frozen=True)
class UDFCall:
    """Logical plan node for ``SELECT * FROM dana.<udf>('<table>')``."""

    udf_name: str
    table_name: str


@dataclass(frozen=True)
class SeqScan:
    """Logical plan node for a full-table scan."""

    table_name: str
    columns: tuple[str, ...] | None = None  # None means ``*``


@dataclass(frozen=True)
class CountScan:
    """Logical plan node for ``SELECT count(*) FROM <table>``."""

    table_name: str


LogicalPlan = UDFCall | SeqScan | CountScan


def parse(sql: str) -> LogicalPlan:
    """Parse a query string into a logical plan node."""
    match = _SELECT_UDF_RE.match(sql)
    if match:
        return UDFCall(udf_name=match.group("udf"), table_name=match.group("table"))
    match = _SELECT_COUNT_RE.match(sql)
    if match:
        return CountScan(table_name=match.group("table"))
    match = _SELECT_SCAN_RE.match(sql)
    if match:
        cols = match.group("cols").strip()
        columns = None if cols == "*" else tuple(c.strip() for c in cols.split(","))
        return SeqScan(table_name=match.group("table"), columns=columns)
    raise QueryError(f"unsupported query: {sql!r}")


@dataclass
class QueryResult:
    """Result of executing a query.

    ``rows`` holds the materialised output (scan results or the UDF's
    return rows); ``payload`` carries structured UDF output such as a
    trained-model report, and ``stats`` holds engine-side counters.
    """

    rows: list[tuple[Any, ...]] = field(default_factory=list)
    columns: tuple[str, ...] = ()
    payload: Any = None
    stats: dict[str, Any] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.rows)


class UDFHandler(Protocol):
    """Callable invoked by the executor for ``dana.<udf>()`` queries."""

    def __call__(self, database: Any, table_name: str) -> QueryResult: ...


class QueryExecutor:
    """Executes logical plans against a :class:`repro.rdbms.database.Database`."""

    def __init__(self, database: Any) -> None:
        self.database = database

    def execute(self, sql: str) -> QueryResult:
        plan = parse(sql)
        return self.execute_plan(plan)

    def execute_plan(self, plan: LogicalPlan) -> QueryResult:
        if isinstance(plan, UDFCall):
            return self._execute_udf(plan)
        if isinstance(plan, CountScan):
            return self._execute_count(plan)
        if isinstance(plan, SeqScan):
            return self._execute_scan(plan)
        raise QueryError(f"unknown plan node {plan!r}")

    # ------------------------------------------------------------------ #
    # plan node execution
    # ------------------------------------------------------------------ #
    def _execute_udf(self, plan: UDFCall) -> QueryResult:
        catalog = self.database.catalog
        if not catalog.has_udf(plan.udf_name):
            raise QueryError(f"UDF dana.{plan.udf_name} is not registered")
        if not catalog.has_table(plan.table_name):
            raise QueryError(f"table {plan.table_name!r} does not exist")
        handler = catalog.udf(plan.udf_name)
        return handler(self.database, plan.table_name)

    def _execute_scan(self, plan: SeqScan) -> QueryResult:
        if not self.database.catalog.has_table(plan.table_name):
            raise QueryError(f"table {plan.table_name!r} does not exist")
        table = self.database.table(plan.table_name)
        schema = table.schema
        rows = list(table.scan_tuples(self.database.buffer_pool))
        if plan.columns is not None:
            indexes = [schema.index_of(c) for c in plan.columns]
            rows = [tuple(row[i] for i in indexes) for row in rows]
            columns = plan.columns
        else:
            columns = schema.names
        return QueryResult(rows=rows, columns=columns)

    def _execute_count(self, plan: CountScan) -> QueryResult:
        if not self.database.catalog.has_table(plan.table_name):
            raise QueryError(f"table {plan.table_name!r} does not exist")
        table = self.database.table(plan.table_name)
        count = sum(1 for _ in table.scan_tuples(self.database.buffer_pool))
        return QueryResult(rows=[(count,)], columns=("count",))
