"""SQL front end: tokenizer, recursive-descent parser, logical plan, executor.

The paper's premise — like MADlib's "MAD Skills" lineage — is that advanced
analytics live *inside* the RDBMS behind a SQL surface.  This module is that
surface for the reproduction.  It grew from three regex patterns into a
small but real pipeline: a tokenizer, a recursive-descent parser producing
immutable logical-plan nodes, and an executor that walks the plan against
the :class:`~repro.rdbms.database.Database` (the classic parse → plan →
execute shape of Figure 2).

Supported statements (full grammar with examples in ``docs/sql.md``):

* ``SELECT * | cols | count(*) FROM <table> [WHERE ...] [LIMIT n]``
* ``SELECT * FROM dana.<udf>('<table>')`` — invoke a registered training
  UDF (the DAnA accelerator, MADlib baseline, ...) as a black box;
* ``SELECT dana.predict('<model>' [, version => k]) [AS name]
  FROM <table> [WHERE ...] [LIMIT n]`` — score a table with a saved model
  through the batched inference tape;
* ``SELECT * FROM dana.score('<model>', '<table>' [, segments => N,
  version => k, batch_size => B, stream => true|false,
  execution => 'threads'|'processes']) [LIMIT n]`` — sharded
  scan-and-score with explicit serving knobs;
* ``CREATE MODEL <name> AS TRAIN <udf> ON <table> [WITH (epochs => e,
  segments => N, ...)]`` — train and persist a model version;
* ``DROP MODEL <name> [VERSION k]`` and ``SHOW MODELS``;
* ``EXPLAIN [ANALYZE] <statement>`` — render the statement's operator
  tree with predicted costs from :mod:`repro.perf`; with ``ANALYZE``
  the statement also executes inside a statement-scoped telemetry
  capture (:class:`~repro.obs.statement_trace.StatementTrace`) and each
  operator shows predicted vs. measured work (see
  :mod:`repro.rdbms.explain`).

Prediction/training statements execute against the **serving runtime** (a
:class:`repro.core.DAnA` instance attached via
:meth:`~repro.rdbms.database.Database.attach_serving_runtime`), so SQL
predictions flow through the same batched inference tape and bulk Strider
scan-and-score as the Python API — never a per-tuple Python detour.

Every parse error echoes the offending statement with a caret under the
offending token (see :func:`caret_message`); executor errors append the
statement they were raised from.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Protocol, Sequence

from repro.exceptions import CatalogError, QueryError
from repro.obs.telemetry import telemetry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.rdbms.types import Schema

#: comparison operators accepted in WHERE predicates, source → semantics.
COMPARISON_OPS = ("=", "!=", "<>", "<", "<=", ">", ">=")

#: statement keywords that may start a statement (used for error hints).
_STATEMENT_STARTERS = ("SELECT", "CREATE", "DROP", "SHOW", "EXPLAIN")

#: words rejected in name positions because they would make the grammar
#: ambiguous there (``train``, ``model``, ``version``, ... stay legal
#: table/column/model names).
_RESERVED = frozenset(
    {"select", "from", "where", "limit", "and", "as",
     "create", "drop", "show", "on", "with"}
)

_TOKEN_RE = re.compile(
    r"""
      (?P<ws>\s+)
    | (?P<string>'(?:[^']|'')*')
    | (?P<number>\d+(?:\.\d+)?)
    | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
    | (?P<op>=>|<>|!=|<=|>=|[=<>().,;*])
    """,
    re.VERBOSE,
)


# ---------------------------------------------------------------------- #
# error formatting
# ---------------------------------------------------------------------- #
def caret_message(sql: str, position: int, message: str) -> str:
    """Format ``message`` with the statement echoed and a caret at ``position``.

    Args:
        sql: the full statement text the error occurred in.
        position: 0-based character offset of the offending token.
        message: the one-line diagnosis.

    Returns:
        A multi-line string: the message, the offending source line, and a
        caret (``^``) under the offending column.
    """
    position = max(0, min(position, len(sql)))
    line_start = sql.rfind("\n", 0, position) + 1
    line_end = sql.find("\n", position)
    if line_end == -1:
        line_end = len(sql)
    line = sql[line_start:line_end]
    column = position - line_start
    return (
        f"{message}\n  {line}\n  {' ' * column}^ (at position {position})"
    )


def _parse_error(sql: str, position: int, message: str) -> QueryError:
    """A :class:`QueryError` carrying the statement and caret position."""
    error = QueryError(caret_message(sql, position, message))
    error.statement = sql
    error.position = position
    return error


def _unquote(raw: str) -> str:
    """A string token's value: strip quotes, unescape doubled quotes."""
    return raw[1:-1].replace("''", "'")


# ---------------------------------------------------------------------- #
# tokenizer
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class Token:
    """One lexical token of a SQL statement.

    ``kind`` is one of ``"string"``, ``"number"``, ``"ident"``, ``"op"``
    or ``"end"``; ``value`` is the raw source text (strings keep their
    quotes) and ``position`` the 0-based character offset in the statement.
    """

    kind: str
    value: str
    position: int

    @property
    def upper(self) -> str:
        """The token text upper-cased (keyword comparisons)."""
        return self.value.upper()


def tokenize(sql: str) -> list[Token]:
    """Split a statement into :class:`Token` objects.

    Args:
        sql: the statement text.

    Returns:
        The token list, terminated by one ``"end"`` token.

    Raises:
        QueryError: on any character no token pattern matches, with the
            statement and a caret at the bad character.
    """
    tokens: list[Token] = []
    position = 0
    while position < len(sql):
        match = _TOKEN_RE.match(sql, position)
        if match is None:
            raise _parse_error(
                sql, position, f"unexpected character {sql[position]!r}"
            )
        kind = match.lastgroup or ""
        if kind != "ws":
            tokens.append(Token(kind=kind, value=match.group(), position=position))
        position = match.end()
    tokens.append(Token(kind="end", value="", position=len(sql)))
    return tokens


# ---------------------------------------------------------------------- #
# logical plan nodes
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class Comparison:
    """One ``<column> <op> <literal>`` predicate of a WHERE clause."""

    column: str
    op: str
    value: float | str | bool


@dataclass(frozen=True)
class SeqScan:
    """Plan node for ``SELECT [cols|*] FROM <table> [WHERE][LIMIT]``."""

    table_name: str
    columns: tuple[str, ...] | None = None  # None means ``*``
    where: tuple[Comparison, ...] = ()
    limit: int | None = None


@dataclass(frozen=True)
class CountScan:
    """Plan node for ``SELECT count(*) FROM <table> [WHERE]``."""

    table_name: str
    where: tuple[Comparison, ...] = ()


@dataclass(frozen=True)
class UDFCall:
    """Plan node for ``SELECT * FROM dana.<udf>('<table>')``."""

    udf_name: str
    table_name: str


@dataclass(frozen=True)
class PredictScan:
    """Plan node for ``SELECT dana.predict('<model>', ...) FROM <table>``.

    Executed by the serving runtime: the whole table is scan-and-scored
    through the batched inference tape (bit-identical to
    ``DAnA.score_table``), then WHERE / LIMIT select the returned rows.
    """

    model_name: str
    table_name: str
    version: int | None = None
    where: tuple[Comparison, ...] = ()
    limit: int | None = None
    alias: str | None = None


@dataclass(frozen=True)
class ScoreCall:
    """Plan node for ``SELECT * FROM dana.score('<model>', '<table>', ...)``."""

    model_name: str
    table_name: str
    version: int | None = None
    segments: int | None = None
    batch_size: int | None = None
    stream: bool | None = None
    #: segment fan-out strategy (``'threads'`` or ``'processes'``);
    #: ``None`` keeps ``score_table``'s default.
    execution: str | None = None
    limit: int | None = None


@dataclass(frozen=True)
class CreateModel:
    """Plan node for ``CREATE MODEL <name> AS TRAIN <udf> ON <table>``.

    ``options`` holds the ``WITH (key => value, ...)`` pairs verbatim; the
    serving runtime validates them against ``DAnA.train``'s configuration.
    """

    model_name: str
    udf_name: str
    table_name: str
    options: tuple[tuple[str, Any], ...] = ()


@dataclass(frozen=True)
class DropModel:
    """Plan node for ``DROP MODEL <name> [VERSION k]``."""

    model_name: str
    version: int | None = None


@dataclass(frozen=True)
class ShowModels:
    """Plan node for ``SHOW MODELS``."""


@dataclass(frozen=True)
class Explain:
    """Plan node for ``EXPLAIN [ANALYZE] <statement>``.

    ``statement`` is the wrapped statement's own plan node; ``analyze``
    is True when the statement should also be executed under a
    statement-scoped telemetry capture.
    """

    statement: "LogicalPlan"
    analyze: bool = False


LogicalPlan = (
    SeqScan
    | CountScan
    | UDFCall
    | PredictScan
    | ScoreCall
    | CreateModel
    | DropModel
    | ShowModels
    | Explain
)


# ---------------------------------------------------------------------- #
# parser
# ---------------------------------------------------------------------- #
class _Parser:
    """Recursive-descent parser over the token stream of one statement."""

    def __init__(self, sql: str) -> None:
        self.sql = sql
        self.tokens = tokenize(sql)
        self.index = 0

    # -- token-stream helpers ------------------------------------------ #
    def peek(self, ahead: int = 0) -> Token:
        index = min(self.index + ahead, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.peek()
        if token.kind != "end":
            self.index += 1
        return token

    def error(self, message: str, token: Token | None = None) -> QueryError:
        token = token or self.peek()
        return _parse_error(self.sql, token.position, message)

    def at_keyword(self, *words: str) -> bool:
        token = self.peek()
        return token.kind == "ident" and token.upper in words

    def expect_keyword(self, word: str) -> Token:
        if not self.at_keyword(word):
            raise self.error(f"expected {word}")
        return self.advance()

    def expect_op(self, op: str, what: str | None = None) -> Token:
        token = self.peek()
        if token.kind != "op" or token.value != op:
            raise self.error(what or f"expected {op!r}")
        return self.advance()

    def accept_op(self, op: str) -> bool:
        token = self.peek()
        if token.kind == "op" and token.value == op:
            self.advance()
            return True
        return False

    def expect_name(self, what: str) -> str:
        token = self.peek()
        if token.kind != "ident" or token.value.lower() in _RESERVED:
            raise self.error(f"expected {what}")
        return self.advance().value

    def expect_string(self, what: str) -> str:
        token = self.peek()
        if token.kind != "string":
            raise self.error(f"expected a quoted {what}, e.g. '<{what}>'")
        self.advance()
        return _unquote(token.value)

    def expect_int(self, what: str) -> int:
        token = self.peek()
        if token.kind != "number" or "." in token.value:
            raise self.error(f"expected an integer {what}")
        self.advance()
        return int(token.value)

    def expect_end(self) -> None:
        self.accept_op(";")
        token = self.peek()
        if token.kind != "end":
            raise self.error(f"unexpected trailing input {token.value!r}")

    # -- grammar ------------------------------------------------------- #
    def statement(self) -> LogicalPlan:
        if self.at_keyword("EXPLAIN"):
            return self._explain()
        if self.at_keyword("SELECT"):
            return self._select()
        if self.at_keyword("CREATE"):
            return self._create_model()
        if self.at_keyword("DROP"):
            return self._drop_model()
        if self.at_keyword("SHOW"):
            return self._show_models()
        raise self.error(
            "unsupported statement; expected one of "
            + ", ".join(_STATEMENT_STARTERS)
        )

    def _explain(self) -> Explain:
        """``EXPLAIN [ANALYZE] <statement>`` — wraps any other statement."""
        self.expect_keyword("EXPLAIN")
        analyze = False
        if self.at_keyword("ANALYZE"):
            self.advance()
            analyze = True
        if self.at_keyword("EXPLAIN"):
            raise self.error("EXPLAIN statements cannot be nested")
        return Explain(statement=self.statement(), analyze=analyze)

    def _select(self) -> LogicalPlan:
        self.expect_keyword("SELECT")
        # select list: *, count(*), dana.predict(...), or a column list.
        star = count = False
        predict: dict[str, Any] | None = None
        columns: tuple[str, ...] | None = None
        if self.accept_op("*"):
            star = True
        elif self.at_keyword("COUNT") and self.peek(1).value == "(":
            self.advance()
            self.expect_op("(")
            self.expect_op("*", "count(*) is the only supported aggregate")
            self.expect_op(")")
            count = True
        elif self.at_keyword("DANA") and self.peek(1).value == ".":
            predict = self._predict_call()
        else:
            names = [self.expect_name("a column name or '*'")]
            while self.accept_op(","):
                names.append(self.expect_name("a column name"))
            columns = tuple(names)
        self.expect_keyword("FROM")

        # FROM item: plain table, dana.<udf>('<table>'), or dana.score(...).
        if self.at_keyword("DANA") and self.peek(1).value == ".":
            from_call = self._from_dana_call(star)
        else:
            from_call = None
        if from_call is None:
            table_name = self.expect_name("a table name")
        where = self._where_clause()
        limit = self._limit_clause()
        self.expect_end()

        if predict is not None:
            if from_call is not None:
                raise self.error(
                    "dana.predict(...) selects FROM a plain table, "
                    "not from another dana.* call"
                )
            return PredictScan(
                model_name=predict["model"],
                table_name=table_name,
                version=predict["version"],
                where=where,
                limit=limit,
                alias=predict["alias"],
            )
        if from_call is not None:
            if where:
                raise self.error(
                    "WHERE is not supported on dana.* FROM calls; "
                    "filter the input table instead"
                )
            if isinstance(from_call, ScoreCall):
                return ScoreCall(
                    model_name=from_call.model_name,
                    table_name=from_call.table_name,
                    version=from_call.version,
                    segments=from_call.segments,
                    batch_size=from_call.batch_size,
                    stream=from_call.stream,
                    execution=from_call.execution,
                    limit=limit,
                )
            if limit is not None:
                raise self.error("LIMIT is not supported on training UDF calls")
            return from_call
        if count:
            if limit is not None:
                raise self.error("LIMIT is not supported with count(*)")
            return CountScan(table_name=table_name, where=where)
        return SeqScan(
            table_name=table_name, columns=columns, where=where, limit=limit
        )

    def _predict_call(self) -> dict[str, Any]:
        """``dana.predict('<model>' [, version => k]) [AS name]``."""
        self.expect_keyword("DANA")
        self.expect_op(".")
        name_token = self.peek()
        if name_token.upper != "PREDICT":
            raise self.error(
                "only dana.predict(...) may appear in the select list "
                "(dana.<udf>(...) and dana.score(...) are FROM items)"
            )
        self.advance()
        self.expect_op("(")
        model = self.expect_string("model")
        kwargs = self._kwargs_until_close(allowed={"version": "int"})
        alias = None
        if self.at_keyword("AS"):
            self.advance()
            alias = self.expect_name("an alias after AS")
        return {"model": model, "version": kwargs.get("version"), "alias": alias}

    def _from_dana_call(self, star: bool) -> UDFCall | ScoreCall:
        """``dana.<udf>('<table>')`` or ``dana.score('<model>', '<table>', ...)``."""
        dana_token = self.peek()
        self.expect_keyword("DANA")
        self.expect_op(".")
        name = self.expect_name("a UDF name after 'dana.'")
        if not star:
            raise _parse_error(
                self.sql,
                dana_token.position,
                "dana.* FROM calls support only SELECT *",
            )
        if name.lower() == "predict":
            raise self.error(
                "dana.predict(...) belongs in the select list: "
                "SELECT dana.predict('<model>') FROM <table>"
            )
        self.expect_op("(")
        if name.lower() == "score":
            model = self.expect_string("model")
            self.expect_op(",", "dana.score needs ('<model>', '<table>', ...)")
            table = self.expect_string("table")
            kwargs = self._kwargs_until_close(
                allowed={
                    "segments": "int",
                    "version": "int",
                    "batch_size": "int",
                    "stream": "bool",
                    "execution": "str",
                }
            )
            return ScoreCall(
                model_name=model,
                table_name=table,
                version=kwargs.get("version"),
                segments=kwargs.get("segments"),
                batch_size=kwargs.get("batch_size"),
                stream=kwargs.get("stream"),
                execution=kwargs.get("execution"),
            )
        table = self.expect_string("table")
        self.expect_op(")")
        return UDFCall(udf_name=name, table_name=table)

    def _kwargs_until_close(self, allowed: dict[str, str]) -> dict[str, Any]:
        """Parse ``, key => value`` pairs up to the closing ``)``.

        ``allowed`` maps keyword names to expected value kinds (``"int"``,
        ``"bool"`` or ``"str"``); anything else raises with a caret at the
        keyword.
        """
        kwargs: dict[str, Any] = {}
        while self.accept_op(","):
            key_token = self.peek()
            key = self.expect_name("an argument name").lower()
            if key not in allowed:
                raise _parse_error(
                    self.sql,
                    key_token.position,
                    f"unknown argument {key!r}; expected one of "
                    f"{sorted(allowed)}",
                )
            self.expect_op("=>", f"expected '=>' after {key!r}")
            if allowed[key] == "bool":
                if not self.at_keyword("TRUE", "FALSE"):
                    raise self.error(f"expected true or false for {key!r}")
                kwargs[key] = self.advance().upper == "TRUE"
            elif allowed[key] == "str":
                kwargs[key] = self.expect_string(f"value for {key!r}")
            else:
                kwargs[key] = self.expect_int(f"value for {key!r}")
        self.expect_op(")")
        return kwargs

    def _where_clause(self) -> tuple[Comparison, ...]:
        if not self.at_keyword("WHERE"):
            return ()
        self.advance()
        comparisons = [self._comparison()]
        while self.at_keyword("AND"):
            self.advance()
            comparisons.append(self._comparison())
        return tuple(comparisons)

    def _comparison(self) -> Comparison:
        column = self.expect_name("a column name in WHERE")
        op_token = self.peek()
        if op_token.kind != "op" or op_token.value not in COMPARISON_OPS:
            raise self.error(
                f"expected a comparison operator {COMPARISON_OPS}"
            )
        self.advance()
        value_token = self.peek()
        if value_token.kind == "number":
            value: float | str | bool = float(value_token.value)
            self.advance()
        elif value_token.kind == "string":
            value = _unquote(value_token.value)
            self.advance()
        elif self.at_keyword("TRUE", "FALSE"):
            value = self.advance().upper == "TRUE"
        else:
            raise self.error("expected a number, quoted string, true or false")
        return Comparison(column=column, op=op_token.value, value=value)

    def _limit_clause(self) -> int | None:
        if not self.at_keyword("LIMIT"):
            return None
        self.advance()
        limit = self.expect_int("after LIMIT")
        if limit < 0:
            raise self.error("LIMIT must be >= 0")
        return limit

    def _create_model(self) -> CreateModel:
        self.expect_keyword("CREATE")
        self.expect_keyword("MODEL")
        model_name = self.expect_name("a model name")
        self.expect_keyword("AS")
        self.expect_keyword("TRAIN")
        udf_name = self.expect_name("a registered UDF name after TRAIN")
        self.expect_keyword("ON")
        table_name = self.expect_name("a table name after ON")
        options: list[tuple[str, Any]] = []
        if self.at_keyword("WITH"):
            self.advance()
            self.expect_op("(")
            options.append(self._option())
            while self.accept_op(","):
                options.append(self._option())
            self.expect_op(")")
        self.expect_end()
        return CreateModel(
            model_name=model_name,
            udf_name=udf_name,
            table_name=table_name,
            options=tuple(options),
        )

    def _option(self) -> tuple[str, Any]:
        """One ``key => value`` pair of a CREATE MODEL WITH clause."""
        key = self.expect_name("an option name").lower()
        self.expect_op("=>", f"expected '=>' after {key!r}")
        token = self.peek()
        if token.kind == "number":
            self.advance()
            value: Any = float(token.value) if "." in token.value else int(token.value)
        elif token.kind == "string":
            self.advance()
            value = _unquote(token.value)
        elif self.at_keyword("TRUE", "FALSE"):
            value = self.advance().upper == "TRUE"
        elif token.kind == "ident":
            value = self.advance().value
        else:
            raise self.error(f"expected a value for option {key!r}")
        return key, value

    def _drop_model(self) -> DropModel:
        self.expect_keyword("DROP")
        self.expect_keyword("MODEL")
        model_name = self.expect_name("a model name")
        version = None
        if self.at_keyword("VERSION"):
            self.advance()
            version = self.expect_int("after VERSION")
        self.expect_end()
        return DropModel(model_name=model_name, version=version)

    def _show_models(self) -> ShowModels:
        self.expect_keyword("SHOW")
        self.expect_keyword("MODELS")
        self.expect_end()
        return ShowModels()


def parse(sql: str) -> LogicalPlan:
    """Parse one SQL statement into a logical-plan node.

    Args:
        sql: the statement text (a trailing ``;`` is optional).

    Returns:
        The immutable plan node (one of :data:`LogicalPlan`).

    Raises:
        QueryError: on any lexical or syntactic problem; the message echoes
            the statement with a caret at the offending position.
    """
    return _Parser(sql).statement()


# ---------------------------------------------------------------------- #
# predicate evaluation (shared by the executor and the serving runtime)
# ---------------------------------------------------------------------- #
def matches_row(
    schema: "Schema", row: Sequence[Any], comparisons: Iterable[Comparison]
) -> bool:
    """True when ``row`` satisfies every comparison (AND semantics).

    Args:
        schema: the table schema (resolves column names to positions).
        row: one scanned tuple, in schema order.
        comparisons: the parsed WHERE predicates.

    Returns:
        Whether all comparisons hold for the row.

    Raises:
        QueryError: when a comparison names a column the schema lacks.
    """
    for comparison in comparisons:
        try:
            index = schema.index_of(comparison.column)
        except Exception:
            raise QueryError(
                f"WHERE references unknown column {comparison.column!r}; "
                f"table columns are {list(schema.names)}"
            ) from None
        value = row[index]
        target = comparison.value
        op = comparison.op
        try:
            if op == "=":
                ok = value == target
            elif op in ("!=", "<>"):
                ok = value != target
            elif op == "<":
                ok = value < target
            elif op == "<=":
                ok = value <= target
            elif op == ">":
                ok = value > target
            else:  # ">="
                ok = value >= target
        except TypeError:
            raise QueryError(
                f"WHERE comparison {comparison.column} {op} {target!r} is "
                f"not valid for a column value of type "
                f"{type(value).__name__}"
            ) from None
        if not ok:
            return False
    return True


# ---------------------------------------------------------------------- #
# results, runtime protocol, executor
# ---------------------------------------------------------------------- #
@dataclass
class QueryResult:
    """Result of executing a query.

    ``rows`` holds the materialised output (scan results, predictions or a
    statement's summary row); ``payload`` carries structured output such as
    a trained-model report or a :class:`~repro.serving.ScoreResult`, and
    ``stats`` holds engine-side counters.
    """

    rows: list[tuple[Any, ...]] = field(default_factory=list)
    columns: tuple[str, ...] = ()
    payload: Any = None
    stats: dict[str, Any] = field(default_factory=dict)

    def __len__(self) -> int:
        """Number of result rows."""
        return len(self.rows)


class UDFHandler(Protocol):
    """Callable invoked by the executor for ``dana.<udf>()`` queries."""

    def __call__(self, database: Any, table_name: str) -> QueryResult:
        """Run the UDF over ``table_name`` and return its result rows."""
        ...


class ServingRuntime(Protocol):
    """What the executor needs from an attached DAnA system.

    :class:`repro.core.DAnA` implements this protocol and attaches itself
    to the database on construction; the executor routes prediction and
    model-training statements through it so SQL scoring runs on the same
    batched inference tape as the Python API.
    """

    def sql_predict(self, plan: PredictScan) -> QueryResult:
        """Execute ``SELECT dana.predict(...) FROM ...``."""
        ...

    def sql_score(self, plan: ScoreCall) -> QueryResult:
        """Execute ``SELECT * FROM dana.score(...)``."""
        ...

    def sql_create_model(self, plan: CreateModel) -> QueryResult:
        """Execute ``CREATE MODEL ... AS TRAIN ...``."""
        ...

    def sql_explain(self, plan: LogicalPlan) -> Any:
        """Build the EXPLAIN operator tree of a serving statement.

        Returns a :class:`~repro.rdbms.explain.PlanOperator` describing
        how the runtime would execute the statement, with predicted
        costs from the :mod:`repro.perf` models.
        """
        ...


class QueryExecutor:
    """Executes logical plans against a :class:`repro.rdbms.database.Database`.

    Scans, ``count(*)``, ``SHOW MODELS`` and ``DROP MODEL`` run directly on
    the storage/catalog layer; UDF calls dispatch to registered handlers;
    predict/score/CREATE MODEL statements dispatch to the attached
    :class:`ServingRuntime`.
    """

    def __init__(self, database: Any) -> None:
        """Bind the executor to one database instance."""
        self.database = database

    def execute(self, sql: str) -> QueryResult:
        """Parse and execute one statement.

        Args:
            sql: the statement text.

        Returns:
            The :class:`QueryResult` of the plan's execution.

        Raises:
            QueryError: on parse errors (with a caret position) or
                execution errors (with the statement appended).
        """
        plan = parse(sql)
        obs = telemetry()
        span = (
            obs.span("sql.execute", statement=type(plan).__name__)
            if obs is not None
            else None
        )
        try:
            result = self.execute_plan(plan)
        except QueryError as error:
            if getattr(error, "statement", None) is None:
                wrapped = QueryError(f"{error}\n  in statement: {sql.strip()}")
                wrapped.statement = sql
                raise wrapped from None
            raise
        if span is not None:
            obs.finish(span, rows=len(result.rows))
        return result

    def execute_plan(self, plan: LogicalPlan) -> QueryResult:
        """Execute an already-parsed logical plan node."""
        if isinstance(plan, UDFCall):
            return self._execute_udf(plan)
        if isinstance(plan, CountScan):
            return self._execute_count(plan)
        if isinstance(plan, SeqScan):
            return self._execute_scan(plan)
        if isinstance(plan, PredictScan):
            return self._serving_runtime().sql_predict(plan)
        if isinstance(plan, ScoreCall):
            return self._serving_runtime().sql_score(plan)
        if isinstance(plan, CreateModel):
            return self._serving_runtime().sql_create_model(plan)
        if isinstance(plan, DropModel):
            return self._execute_drop_model(plan)
        if isinstance(plan, ShowModels):
            return self._execute_show_models()
        if isinstance(plan, Explain):
            return self._execute_explain(plan)
        raise QueryError(f"unknown plan node {plan!r}")

    # ------------------------------------------------------------------ #
    # plan node execution
    # ------------------------------------------------------------------ #
    def _serving_runtime(self) -> ServingRuntime:
        runtime = getattr(self.database, "serving_runtime", None)
        if runtime is None:
            raise QueryError(
                "no DAnA system is attached to this database; construct "
                "repro.core.DAnA(database) before running prediction or "
                "CREATE MODEL statements"
            )
        return runtime

    def _execute_udf(self, plan: UDFCall) -> QueryResult:
        catalog = self.database.catalog
        if not catalog.has_udf(plan.udf_name):
            raise QueryError(
                f"UDF dana.{plan.udf_name} is not registered; "
                f"registered UDFs: {catalog.udf_names()}"
            )
        if not catalog.has_table(plan.table_name):
            raise QueryError(f"table {plan.table_name!r} does not exist")
        handler = catalog.udf(plan.udf_name)
        return handler(self.database, plan.table_name)

    def _scan_rows(
        self, table_name: str, where: tuple[Comparison, ...]
    ) -> tuple[list[tuple[Any, ...]], "Schema"]:
        """Scan a table through the buffer pool, applying WHERE predicates."""
        if not self.database.catalog.has_table(table_name):
            raise QueryError(f"table {table_name!r} does not exist")
        table = self.database.table(table_name)
        schema = table.schema
        rows = [
            row
            for row in table.scan_tuples(self.database.buffer_pool)
            if not where or matches_row(schema, row, where)
        ]
        return rows, schema

    def _execute_scan(self, plan: SeqScan) -> QueryResult:
        rows, schema = self._scan_rows(plan.table_name, plan.where)
        if plan.limit is not None:
            rows = rows[: plan.limit]
        if plan.columns is not None:
            indexes = [schema.index_of(c) for c in plan.columns]
            rows = [tuple(row[i] for i in indexes) for row in rows]
            columns = plan.columns
        else:
            columns = schema.names
        return QueryResult(rows=rows, columns=columns)

    def _execute_count(self, plan: CountScan) -> QueryResult:
        # Counting never materializes the scan: O(1) memory with or
        # without WHERE predicates.
        if not self.database.catalog.has_table(plan.table_name):
            raise QueryError(f"table {plan.table_name!r} does not exist")
        table = self.database.table(plan.table_name)
        count = sum(
            1
            for row in table.scan_tuples(self.database.buffer_pool)
            if not plan.where or matches_row(table.schema, row, plan.where)
        )
        return QueryResult(rows=[(count,)], columns=("count",))

    def _execute_drop_model(self, plan: DropModel) -> QueryResult:
        try:
            dropped = self.database.drop_model(plan.model_name, plan.version)
        except CatalogError as error:
            raise QueryError(str(error)) from None
        return QueryResult(
            rows=[(plan.model_name, version) for version in dropped],
            columns=("model", "dropped_version"),
        )

    def _execute_explain(self, plan: Explain) -> QueryResult:
        """Execute ``EXPLAIN [ANALYZE]``: build, (optionally) run, render.

        Plain ``EXPLAIN`` never executes the statement — the operator
        tree carries only resolved knobs and predicted costs.  ``EXPLAIN
        ANALYZE`` executes it inside a
        :class:`~repro.obs.statement_trace.StatementTrace`, annotates
        predicted-vs-actual per operator, and — when the statement
        recorded a run — persists the trace payload onto that run so
        ``repro trace <run_id>`` can replay it.
        """
        from repro.obs.statement_trace import StatementTrace
        from repro.rdbms.explain import PlanExplainer

        explainer = PlanExplainer(self.database)
        report = explainer.build_report(plan)
        stats: dict[str, Any] = {"analyze": plan.analyze}
        if plan.analyze:
            catalog = self.database.catalog
            runs_before = catalog.next_run_id()
            trace = StatementTrace()
            with trace:
                inner = self.execute_plan(plan.statement)
            report.result = inner
            report.trace = trace.to_payload()
            explainer.annotate(report, trace, inner)
            runs_after = catalog.next_run_id()
            runtime = getattr(self.database, "serving_runtime", None)
            recorder = getattr(runtime, "run_recorder", None)
            if recorder is not None and runs_after > runs_before:
                report.run_id = runs_after - 1
                recorder.attach_trace(report.run_id, report.to_payload())
            stats["run_id"] = report.run_id
        return QueryResult(
            rows=[(line,) for line in report.render()],
            columns=("QUERY PLAN",),
            payload=report,
            stats=stats,
        )

    def _execute_show_models(self) -> QueryResult:
        rows = []
        for entry in self.database.catalog.models():
            params = ",".join(
                f"{p.name}({'x'.join(map(str, p.shape)) or 'scalar'})"
                for p in entry.params
            )
            rows.append(
                (entry.name, entry.version, entry.algorithm, entry.table_name, params)
            )
        return QueryResult(
            rows=rows,
            columns=("model", "version", "algorithm", "table_name", "parameters"),
        )
