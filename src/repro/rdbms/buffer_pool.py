"""Buffer pool with LRU replacement.

The buffer pool is the hand-off point between the RDBMS engine and DAnA's
access engine: "the RDBMS fills the buffer pool, from which DAnA ships the
data pages to the FPGA" (§3).  It caches page images read through the
storage manager, tracks hits/misses/evictions, and supports pinning so
that pages being streamed to the FPGA are not evicted mid-transfer.

Warm-cache experiments pre-load the training table with
:meth:`BufferPool.prefetch_table`; cold-cache experiments simply start with
an empty pool so every page is a miss.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.exceptions import BufferPoolError
from repro.rdbms.storage import StorageManager

DEFAULT_POOL_BYTES = 8 * 1024 * 1024 * 1024  # 8 GB, the paper's default


@dataclass
class BufferPoolStats:
    """Counters describing buffer-pool behaviour during a run."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    prefetched: int = 0
    invalidated: int = 0

    @property
    def accesses(self) -> int:
        """Total page requests served (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of page requests served from the pool."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    def reset(self) -> None:
        """Zero all counters."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.prefetched = 0
        self.invalidated = 0


class _Frame:
    __slots__ = ("image", "pin_count", "dirty")

    def __init__(self, image: bytes) -> None:
        self.image = image
        self.pin_count = 0
        self.dirty = False


class BufferPool:
    """An LRU page cache sitting between the storage manager and consumers."""

    def __init__(
        self,
        storage: StorageManager,
        pool_bytes: int = DEFAULT_POOL_BYTES,
        page_size: int = 32 * 1024,
    ) -> None:
        if pool_bytes < page_size:
            raise BufferPoolError("buffer pool must hold at least one page")
        self.storage = storage
        self.page_size = page_size
        self.capacity_pages = max(1, pool_bytes // page_size)
        self._frames: "OrderedDict[tuple[str, int], _Frame]" = OrderedDict()
        self.stats = BufferPoolStats()

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._frames)

    def resident(self, file_name: str, page_no: int) -> bool:
        """True when the page is currently cached in the pool."""
        return (file_name, page_no) in self._frames

    def resident_pages(self, file_name: str) -> int:
        """Number of a file's pages currently cached."""
        return sum(1 for key in self._frames if key[0] == file_name)

    # ------------------------------------------------------------------ #
    # page access
    # ------------------------------------------------------------------ #
    def get_page(self, file_name: str, page_no: int, pin: bool = False) -> bytes:
        """Return a page image, fetching it from storage on a miss."""
        key = (file_name, page_no)
        frame = self._frames.get(key)
        if frame is not None:
            self.stats.hits += 1
            self._frames.move_to_end(key)
        else:
            self.stats.misses += 1
            image = self.storage.read_page(file_name, page_no)
            frame = _Frame(image)
            self._admit(key, frame)
        if pin:
            frame.pin_count += 1
        return frame.image

    def invalidate(self, file_name: str, page_no: int) -> bool:
        """Drop a cached frame after its storage page was rewritten.

        The WAL apply path calls this when it overwrites the tail page in
        place, so the next :meth:`get_page` re-reads the new image instead
        of serving a stale frame.  Returns True when a frame was dropped.
        Raises :class:`BufferPoolError` if the frame is pinned (a page being
        streamed to the accelerator must never change underneath it —
        snapshot scans read pre-images from the heap file's version store
        instead).
        """
        key = (file_name, page_no)
        frame = self._frames.get(key)
        if frame is None:
            return False
        if frame.pin_count > 0:
            raise BufferPoolError(
                f"cannot invalidate pinned page {key}; it is mid-transfer"
            )
        del self._frames[key]
        self.stats.invalidated += 1
        return True

    def unpin(self, file_name: str, page_no: int) -> None:
        """Release a pin taken by ``get_page``; raises BufferPoolError if not pinned."""
        key = (file_name, page_no)
        frame = self._frames.get(key)
        if frame is None or frame.pin_count == 0:
            raise BufferPoolError(f"page {key} is not pinned")
        frame.pin_count -= 1

    def _admit(self, key: tuple[str, int], frame: _Frame) -> None:
        while len(self._frames) >= self.capacity_pages:
            evicted = self._evict_one()
            if not evicted:
                # Everything is pinned; allow the pool to grow rather than
                # deadlock.  This mirrors PostgreSQL refusing to evict pinned
                # buffers.
                break
        self._frames[key] = frame

    def _evict_one(self) -> bool:
        for key, frame in self._frames.items():
            if frame.pin_count == 0:
                del self._frames[key]
                self.stats.evictions += 1
                return True
        return False

    # ------------------------------------------------------------------ #
    # warm / cold cache control
    # ------------------------------------------------------------------ #
    def prefetch_table(self, file_name: str, max_pages: int | None = None) -> int:
        """Pre-load a file into the pool (warm-cache setup).

        Returns the number of pages actually made resident; when the table is
        larger than the pool only a prefix fits, matching the paper's setup
        where "only a part of the synthetic datasets are contained in the
        buffer pool".
        """
        total = self.storage.page_count(file_name)
        if max_pages is not None:
            total = min(total, max_pages)
        loaded = 0
        for page_no in range(total):
            if len(self._frames) >= self.capacity_pages:
                break
            if not self.resident(file_name, page_no):
                image = self.storage.read_page(file_name, page_no)
                self._frames[(file_name, page_no)] = _Frame(image)
                self.stats.prefetched += 1
            loaded += 1
        return loaded

    def clear(self) -> None:
        """Drop every unpinned frame (cold-cache setup)."""
        pinned = {k: f for k, f in self._frames.items() if f.pin_count > 0}
        self._frames = OrderedDict(pinned)

    def reset_stats(self) -> None:
        """Zero the hit/miss/eviction counters."""
        self.stats.reset()
        self.storage.stats.reset()
