"""Column types and relation schemas for the miniature RDBMS substrate.

The substrate only needs the types that appear in the paper's training
tables: fixed-width numeric columns (features, labels, matrix indices).
Every type knows how to encode/decode itself to the on-page binary format
so that the Strider simulator can extract raw bytes exactly the way the
hardware would.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Sequence

from repro.exceptions import RDBMSError


class ColumnType(Enum):
    """Fixed-width column types supported by the substrate."""

    FLOAT4 = "float4"
    FLOAT8 = "float8"
    INT2 = "int2"
    INT4 = "int4"
    INT8 = "int8"

    @property
    def width(self) -> int:
        """Width of the column in bytes on the page."""
        return _WIDTHS[self]

    @property
    def struct_code(self) -> str:
        """``struct`` format character used for encoding."""
        return _STRUCT_CODES[self]

    @property
    def is_integer(self) -> bool:
        """True for the integer column types (INT2/INT4/INT8)."""
        return self in (ColumnType.INT2, ColumnType.INT4, ColumnType.INT8)

    def encode(self, value: float | int) -> bytes:
        """Encode a Python value into the on-page little-endian bytes.

        Integer columns accept float inputs (NumPy row extraction yields
        floats) as long as the value is integral.
        """
        if self.is_integer and not isinstance(value, int):
            value = int(round(float(value)))
        return struct.pack("<" + self.struct_code, value)

    def decode(self, raw: bytes) -> float | int:
        """Decode on-page bytes back into a Python value."""
        if len(raw) != self.width:
            raise RDBMSError(
                f"cannot decode {self.value}: expected {self.width} bytes, got {len(raw)}"
            )
        return struct.unpack("<" + self.struct_code, raw)[0]


_WIDTHS = {
    ColumnType.FLOAT4: 4,
    ColumnType.FLOAT8: 8,
    ColumnType.INT2: 2,
    ColumnType.INT4: 4,
    ColumnType.INT8: 8,
}

_STRUCT_CODES = {
    ColumnType.FLOAT4: "f",
    ColumnType.FLOAT8: "d",
    ColumnType.INT2: "h",
    ColumnType.INT4: "i",
    ColumnType.INT8: "q",
}


@dataclass(frozen=True)
class Column:
    """A single column of a relation."""

    name: str
    ctype: ColumnType

    @property
    def width(self) -> int:
        """On-page width of this column in bytes."""
        return self.ctype.width


@dataclass(frozen=True)
class Schema:
    """An ordered collection of columns describing a relation.

    The training tables used throughout the paper have the layout
    ``(feature_0, ..., feature_{k-1}, label)`` for the regression /
    classification algorithms and ``(row, col, value)`` for LRMF.
    """

    columns: tuple[Column, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(names) != len(set(names)):
            raise RDBMSError(f"duplicate column names in schema: {names}")

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self):
        return iter(self.columns)

    @property
    def names(self) -> tuple[str, ...]:
        """Column names, in schema order."""
        return tuple(c.name for c in self.columns)

    @property
    def widths(self) -> tuple[int, ...]:
        """Per-column on-page widths in bytes, in schema order."""
        return tuple(c.width for c in self.columns)

    @property
    def row_width(self) -> int:
        """Total width of the fixed-size attribute payload, in bytes."""
        return sum(c.width for c in self.columns)

    def column_offset(self, index: int) -> int:
        """Byte offset of column ``index`` within the attribute payload."""
        if not 0 <= index < len(self.columns):
            raise RDBMSError(f"column index {index} out of range")
        return sum(c.width for c in self.columns[:index])

    def index_of(self, name: str) -> int:
        """Position of a column; raises RDBMSError for unknown names."""
        for i, col in enumerate(self.columns):
            if col.name == name:
                return i
        raise RDBMSError(f"no column named {name!r}")

    def encode_row(self, values: Sequence[float | int]) -> bytes:
        """Encode one row of Python values into the attribute payload."""
        if len(values) != len(self.columns):
            raise RDBMSError(
                f"row has {len(values)} values but schema has {len(self.columns)} columns"
            )
        return b"".join(col.ctype.encode(v) for col, v in zip(self.columns, values))

    def decode_row(self, payload: bytes) -> tuple[float | int, ...]:
        """Decode an attribute payload back into a tuple of Python values."""
        if len(payload) != self.row_width:
            raise RDBMSError(
                f"payload is {len(payload)} bytes but schema row width is {self.row_width}"
            )
        out = []
        offset = 0
        for col in self.columns:
            out.append(col.ctype.decode(payload[offset : offset + col.width]))
            offset += col.width
        return tuple(out)

    @classmethod
    def build(cls, specs: Iterable[tuple[str, ColumnType]]) -> "Schema":
        """Construct a schema from ``(name, type)`` pairs."""
        return cls(tuple(Column(name, ctype) for name, ctype in specs))

    @classmethod
    def training_schema(
        cls, n_features: int, feature_type: ColumnType = ColumnType.FLOAT4
    ) -> "Schema":
        """Standard dense training schema: ``n_features`` features + 1 label."""
        cols = [Column(f"x{i}", feature_type) for i in range(n_features)]
        cols.append(Column("y", feature_type))
        return cls(tuple(cols))

    @classmethod
    def lrmf_schema(cls, value_type: ColumnType = ColumnType.FLOAT4) -> "Schema":
        """Sparse-rating schema used by low-rank matrix factorization."""
        return cls(
            (
                Column("row", ColumnType.INT4),
                Column("col", ColumnType.INT4),
                Column("value", value_type),
            )
        )
