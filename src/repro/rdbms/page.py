"""Slotted heap page with a PostgreSQL-style layout (paper Figure 6).

A page is laid out as::

    +--------------------------------------------------------------+
    | page header | tuple pointer 1 | tuple pointer 2 | ...         |
    |              ... free space ...                                |
    |                              ... tuple 2 | tuple 1 | special  |
    +--------------------------------------------------------------+

* The **page header** holds the page size, the start/end of free space, the
  offset of the special space and the tuple count.
* **Tuple pointers** (line pointers) grow downward from the header; each is
  4 bytes: a 2-byte byte-offset and a 2-byte length.
* **Tuple data** grows upward from the special space; each tuple carries the
  8-byte tuple header defined in :mod:`repro.rdbms.heaptuple`.

The exact byte offsets are described by :class:`PageLayout`, which is what
DAnA's compiler consumes to emit Strider instructions — the accelerator
never sees Python objects, only these raw bytes.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.exceptions import PageError, PageFullError
from repro.rdbms.heaptuple import TUPLE_HEADER_SIZE, decode_tuple, encode_tuple, tuple_size
from repro.rdbms.types import Schema

DEFAULT_PAGE_SIZE = 32 * 1024
SUPPORTED_PAGE_SIZES = (8 * 1024, 16 * 1024, 32 * 1024)

PAGE_HEADER_SIZE = 24
LINE_POINTER_SIZE = 4

# Page header field offsets (bytes).  These match the Strider assembly in
# §5.1.2 of the paper: the first instruction reads 8 bytes at offset 0 (page
# size), the second reads 2 bytes at offset 8 (free-space start), the third
# reads 4 bytes at offset 10 (free-space end + special offset packed).
_OFF_PAGE_SIZE = 0        # uint64
_OFF_FREE_START = 8       # uint16
_OFF_FREE_END = 10        # uint16
_OFF_SPECIAL = 12         # uint16
_OFF_TUPLE_COUNT = 14     # uint16
_OFF_LSN = 16             # uint64 (reserved)

_HEADER_STRUCT = struct.Struct("<QHHHHQ")
_LINE_POINTER_STRUCT = struct.Struct("<HH")


@dataclass(frozen=True)
class PageLayout:
    """Static description of the page format consumed by the Strider compiler.

    The layout is independent of any particular page's contents: it records
    where the header fields live, how wide line pointers are, and how large
    the per-tuple header is.  DAnA's compiler (§6.2) turns this description
    plus the table schema into a Strider instruction sequence.
    """

    page_size: int = DEFAULT_PAGE_SIZE
    header_size: int = PAGE_HEADER_SIZE
    line_pointer_size: int = LINE_POINTER_SIZE
    tuple_header_size: int = TUPLE_HEADER_SIZE
    special_size: int = 0
    page_size_offset: int = _OFF_PAGE_SIZE
    page_size_width: int = 8
    free_start_offset: int = _OFF_FREE_START
    free_start_width: int = 2
    free_end_offset: int = _OFF_FREE_END
    free_end_width: int = 2
    special_offset: int = _OFF_SPECIAL
    special_width: int = 2
    tuple_count_offset: int = _OFF_TUPLE_COUNT
    tuple_count_width: int = 2

    def __post_init__(self) -> None:
        if self.page_size <= self.header_size + self.special_size:
            raise PageError(
                f"page size {self.page_size} too small for header {self.header_size}"
            )

    @property
    def line_pointer_start(self) -> int:
        """Offset of the first line pointer."""
        return self.header_size

    def usable_bytes(self) -> int:
        """Bytes available for line pointers plus tuple data."""
        return self.page_size - self.header_size - self.special_size

    def tuples_per_page(self, schema: Schema) -> int:
        """Maximum number of tuples of ``schema`` that fit on one page."""
        per_tuple = self.line_pointer_size + self.tuple_header_size + schema.row_width
        return max(0, self.usable_bytes() // per_tuple)

    def pages_for(self, n_tuples: int, schema: Schema) -> int:
        """Number of pages needed to store ``n_tuples`` rows of ``schema``."""
        per_page = self.tuples_per_page(schema)
        if per_page == 0:
            raise PageError(
                f"a tuple of {tuple_size(schema)} bytes does not fit in a "
                f"{self.page_size}-byte page"
            )
        return (n_tuples + per_page - 1) // per_page


class HeapPage:
    """A mutable slotted page holding fixed-width tuples.

    The page owns a ``bytearray`` of exactly ``layout.page_size`` bytes and
    keeps the binary image consistent on every mutation, so the raw bytes can
    be handed to the Strider simulator at any time.
    """

    def __init__(self, layout: PageLayout | None = None) -> None:
        self.layout = layout or PageLayout()
        self._buf = bytearray(self.layout.page_size)
        self._tuple_count = 0
        self._free_start = self.layout.header_size
        self._free_end = self.layout.page_size - self.layout.special_size
        self._lsn = 0
        self._write_header()

    # ------------------------------------------------------------------ #
    # header management
    # ------------------------------------------------------------------ #
    def _write_header(self) -> None:
        header = _HEADER_STRUCT.pack(
            self.layout.page_size,
            self._free_start,
            self._free_end,
            self.layout.page_size - self.layout.special_size,
            self._tuple_count,
            self._lsn,
        )
        self._buf[: PAGE_HEADER_SIZE] = header

    @property
    def page_size(self) -> int:
        """Size of the page image in bytes."""
        return self.layout.page_size

    @property
    def tuple_count(self) -> int:
        """Number of line pointers (stored tuples) on the page."""
        return self._tuple_count

    @property
    def lsn(self) -> int:
        """LSN of the WAL record that last stamped this page (0 = bulk load).

        The LSN lives in the 8 reserved bytes at header offset 16, so it is
        part of the binary image the Striders walk — recovery can therefore
        prove heap state bit-identical, LSN stamps included.
        """
        return self._lsn

    def set_lsn(self, lsn: int) -> None:
        """Stamp the page with the LSN of the mutating WAL record."""
        if lsn < 0:
            raise PageError(f"page LSN must be non-negative, got {lsn}")
        self._lsn = int(lsn)
        self._write_header()

    @property
    def free_space(self) -> int:
        """Bytes left in the hole between pointers and tuple data."""
        return self._free_end - self._free_start

    @property
    def free_space_start(self) -> int:
        """Offset where the next line pointer would be written."""
        return self._free_start

    @property
    def free_space_end(self) -> int:
        """Offset where the hole ends (start of tuple data)."""
        return self._free_end

    # ------------------------------------------------------------------ #
    # tuple operations
    # ------------------------------------------------------------------ #
    def has_room(self, schema: Schema) -> bool:
        """True when a tuple of ``payload_size`` bytes still fits."""
        needed = LINE_POINTER_SIZE + tuple_size(schema)
        return self.free_space >= needed

    def insert(self, schema: Schema, values: Sequence[float | int]) -> int:
        """Insert one row; returns its slot index.

        Raises :class:`PageFullError` when the row does not fit.
        """
        raw = encode_tuple(schema, values)
        needed = LINE_POINTER_SIZE + len(raw)
        if self.free_space < needed:
            raise PageFullError(
                f"tuple of {len(raw)} bytes does not fit in {self.free_space} free bytes"
            )
        # Tuple data grows from the end of the page toward the header.
        self._free_end -= len(raw)
        self._buf[self._free_end : self._free_end + len(raw)] = raw
        # Line pointer grows from the header toward the end of the page.
        pointer = _LINE_POINTER_STRUCT.pack(self._free_end, len(raw))
        self._buf[self._free_start : self._free_start + LINE_POINTER_SIZE] = pointer
        self._free_start += LINE_POINTER_SIZE
        slot = self._tuple_count
        self._tuple_count += 1
        self._write_header()
        return slot

    def line_pointer(self, slot: int) -> tuple[int, int]:
        """Return ``(offset, length)`` of the tuple in ``slot``."""
        if not 0 <= slot < self._tuple_count:
            raise PageError(f"slot {slot} out of range (page has {self._tuple_count})")
        base = self.layout.line_pointer_start + slot * LINE_POINTER_SIZE
        return _LINE_POINTER_STRUCT.unpack(self._buf[base : base + LINE_POINTER_SIZE])

    def read_raw(self, slot: int) -> bytes:
        """Raw bytes (header + payload) of the tuple in ``slot``."""
        offset, length = self.line_pointer(slot)
        return bytes(self._buf[offset : offset + length])

    def read(self, schema: Schema, slot: int) -> tuple[float | int, ...]:
        """Decode the tuple in ``slot`` into Python values."""
        return decode_tuple(schema, self.read_raw(slot))

    def tuples(self, schema: Schema) -> Iterator[tuple[float | int, ...]]:
        """Iterate over every tuple on the page in slot order."""
        for slot in range(self._tuple_count):
            yield self.read(schema, slot)

    # ------------------------------------------------------------------ #
    # serialization
    # ------------------------------------------------------------------ #
    def to_bytes(self) -> bytes:
        """The full binary page image."""
        return bytes(self._buf)

    @classmethod
    def from_bytes(cls, raw: bytes, layout: PageLayout | None = None) -> "HeapPage":
        """Reconstruct a page object from its binary image."""
        layout = layout or PageLayout(page_size=len(raw))
        if len(raw) != layout.page_size:
            raise PageError(
                f"image is {len(raw)} bytes but layout declares {layout.page_size}"
            )
        page = cls.__new__(cls)
        page.layout = layout
        page._buf = bytearray(raw)
        (
            page_size,
            free_start,
            free_end,
            _special,
            tuple_count,
            _lsn,
        ) = _HEADER_STRUCT.unpack(raw[:PAGE_HEADER_SIZE])
        if page_size != layout.page_size:
            raise PageError(
                f"page header declares size {page_size}, layout declares {layout.page_size}"
            )
        page._free_start = free_start
        page._free_end = free_end
        page._tuple_count = tuple_count
        page._lsn = _lsn
        return page

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HeapPage(size={self.page_size}, tuples={self._tuple_count}, "
            f"free={self.free_space})"
        )
