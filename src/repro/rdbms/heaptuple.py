"""Heap tuple binary format.

Tuples are stored on pages the way PostgreSQL stores them: a small fixed
header followed by the attribute payload.  The header carries the total
length, the attribute count and a flags/null-bitmap word.  DAnA's Striders
must skip over this header ("cleanse" the tuple, §5.1.2) before handing the
raw training data to the execution engine, so the exact byte layout matters
and is kept deliberately simple and explicit:

====================  ======  =====================================
field                 bytes   description
====================  ======  =====================================
``t_len``             2       total tuple length including header
``attr_count``        2       number of attributes in the payload
``flags``             2       bit 0 set if any attribute is NULL
``null_bitmap``       2       one bit per attribute (max 16 tracked)
payload               t_len-8 fixed-width attribute data
====================  ======  =====================================
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Sequence

from repro.exceptions import PageError
from repro.rdbms.types import Schema

TUPLE_HEADER_SIZE = 8
_HEADER_STRUCT = struct.Struct("<HHHH")


@dataclass(frozen=True)
class TupleHeader:
    """Decoded fixed-size tuple header."""

    t_len: int
    attr_count: int
    flags: int = 0
    null_bitmap: int = 0

    def encode(self) -> bytes:
        """Pack the header into its on-page binary form."""
        return _HEADER_STRUCT.pack(self.t_len, self.attr_count, self.flags, self.null_bitmap)

    @classmethod
    def decode(cls, raw: bytes) -> "TupleHeader":
        """Unpack a header from its on-page binary form."""
        if len(raw) < TUPLE_HEADER_SIZE:
            raise PageError(
                f"tuple header requires {TUPLE_HEADER_SIZE} bytes, got {len(raw)}"
            )
        t_len, attr_count, flags, null_bitmap = _HEADER_STRUCT.unpack(
            raw[:TUPLE_HEADER_SIZE]
        )
        return cls(t_len=t_len, attr_count=attr_count, flags=flags, null_bitmap=null_bitmap)


def encode_tuple(schema: Schema, values: Sequence[float | int]) -> bytes:
    """Encode one row into its full on-page representation (header + payload)."""
    payload = schema.encode_row(values)
    header = TupleHeader(
        t_len=TUPLE_HEADER_SIZE + len(payload),
        attr_count=len(schema),
    )
    return header.encode() + payload


def decode_tuple(schema: Schema, raw: bytes) -> tuple[float | int, ...]:
    """Decode a full on-page tuple (header + payload) into Python values."""
    header = TupleHeader.decode(raw)
    if header.t_len != len(raw):
        raise PageError(
            f"tuple header claims {header.t_len} bytes but {len(raw)} were supplied"
        )
    if header.attr_count != len(schema):
        raise PageError(
            f"tuple has {header.attr_count} attributes but schema has {len(schema)}"
        )
    return schema.decode_row(raw[TUPLE_HEADER_SIZE:])


def tuple_size(schema: Schema) -> int:
    """On-page size of one tuple of ``schema`` including its header."""
    return TUPLE_HEADER_SIZE + schema.row_width
