"""Write-ahead log: the durability contract for live heap tables.

Every mutation of a live table is logged *before* it touches the heap:
:meth:`WriteAheadLog.append` allocates the next LSN, makes the record
durable, and only then does :meth:`~repro.rdbms.database.Database.apply_wal_record`
stamp the rows into heap pages.  Because a live ``INSERT`` and WAL replay
route the *same record object* through the *same apply function*, the heap
bytes after recovery are bit-identical to the never-crashed heap — LSN
stamps, tail-page packing and all — by construction, not by luck.

Recovery model
--------------
The durable truth is the LSN-0 base image (the ``bulk_load`` pages — an
implicit checkpoint) plus this log.  To recover a crashed database: build a
fresh :class:`~repro.rdbms.database.Database`, re-run the same bulk loads,
then call :meth:`WriteAheadLog.replay` against it.  The log survives the
crash (in a real system it is the fsync'd tail of the WAL file; here it is
the ``WriteAheadLog`` object the harness keeps across the simulated kill).

Crash simulation
----------------
``append`` fires the ``"rdbms.wal.append"`` fault site **twice** per
record: call ``2k-1`` fires *before* record ``k`` becomes durable (a crash
there loses the record — the heap must recover to the state before it) and
call ``2k`` fires *after* durability but *before* the heap apply (a crash
there must be repaired by replay).  ``tests/test_wal_recovery.py`` walks a
kill through every one of those boundaries.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Sequence

from repro.exceptions import RDBMSError
from repro.obs.telemetry import telemetry
from repro.reliability.faults import fault_point

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.rdbms.database import Database

#: fault site fired twice per append (pre-durable, post-durable-pre-apply).
WAL_APPEND_FAULT_SITE = "rdbms.wal.append"


@dataclass(frozen=True)
class WalRecord:
    """One durable log record: *these rows were inserted into this table*."""

    #: log sequence number; globally monotonic per :class:`WriteAheadLog`.
    lsn: int
    #: name of the heap table the rows belong to.
    table: str
    #: the inserted rows, frozen exactly as the client supplied them.
    rows: tuple[tuple[float, ...], ...]

    @property
    def row_count(self) -> int:
        """Number of rows the record carries."""
        return len(self.rows)


class WriteAheadLog:
    """An append-only, globally-ordered log of table mutations.

    Thread-safe: LSN allocation and the durable append happen under one
    lock, so records are strictly ordered even when inserts race.
    """

    def __init__(self) -> None:
        self._records: list[WalRecord] = []
        self._next_lsn = 1
        self._lock = threading.Lock()

    @property
    def current_lsn(self) -> int:
        """LSN of the newest durable record (0 when the log is empty).

        This is the snapshot point scans and refreshes pin themselves to:
        a scan started "now" sees exactly the records with
        ``lsn <= current_lsn``.
        """
        return self._next_lsn - 1

    def __len__(self) -> int:
        return len(self._records)

    def append(
        self, table: str, rows: Sequence[Sequence[float | int]]
    ) -> WalRecord:
        """Make one insert durable; returns the record to apply to the heap.

        Fires the ``"rdbms.wal.append"`` fault site before *and* after the
        durable append (see the module docstring for the crash semantics).
        The caller — :meth:`Database.insert_rows` — must apply the returned
        record; a fault raised between durability and apply is exactly the
        torn state :meth:`replay` repairs.
        """
        frozen = tuple(tuple(float(v) for v in row) for row in rows)
        if not frozen:
            raise RDBMSError(f"cannot log an empty insert into {table!r}")
        fault_point(WAL_APPEND_FAULT_SITE)
        obs = telemetry()
        span = (
            obs.span("rdbms.wal.append", table=table, rows=len(frozen))
            if obs is not None
            else None
        )
        with self._lock:
            record = WalRecord(lsn=self._next_lsn, table=table, rows=frozen)
            self._records.append(record)
            self._next_lsn += 1
        if span is not None:
            obs.finish(span, lsn=record.lsn)
        fault_point(WAL_APPEND_FAULT_SITE)
        return record

    def adopt(self, record: WalRecord) -> None:
        """Register a record replayed from another log into this one.

        Recovery replays a surviving log into a fresh database; adopting
        each record keeps the fresh database's own log contiguous, so it
        can keep serving writes (at LSNs past the replayed tail) and can
        itself be replayed again.  Adopting a record this log already holds
        is a no-op (the live-insert path appends before it applies).
        """
        with self._lock:
            if self._records and self._records[-1].lsn >= record.lsn:
                for existing in reversed(self._records):
                    if existing.lsn == record.lsn:
                        return
                    if existing.lsn < record.lsn:
                        break
                raise RDBMSError(
                    f"cannot adopt WAL record {record.lsn}: log already "
                    f"past it (at {self._records[-1].lsn}) without it"
                )
            self._records.append(record)
            self._next_lsn = record.lsn + 1

    def records(
        self, up_to_lsn: int | None = None, table: str | None = None
    ) -> Iterator[WalRecord]:
        """Durable records in LSN order, optionally bounded and filtered."""
        with self._lock:
            snapshot = list(self._records)
        for record in snapshot:
            if up_to_lsn is not None and record.lsn > up_to_lsn:
                break
            if table is not None and record.table != table:
                continue
            yield record

    def replay(self, database: "Database", up_to_lsn: int | None = None) -> int:
        """Re-apply the log against a freshly bulk-loaded database.

        Routes every record through ``database.apply_wal_record`` — the
        same function the live insert path uses — so the recovered heap is
        bit-identical to the never-crashed one.  Records for tables the
        target database does not have are an error (recovery must re-run
        the same bulk loads first).  Returns the number of records applied.
        """
        applied = 0
        for record in self.records(up_to_lsn=up_to_lsn):
            database.apply_wal_record(record)
            applied += 1
        return applied
