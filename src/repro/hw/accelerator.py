"""The complete DAnA accelerator: access engine + execution engine.

This module wires the two engines together the way Figure 4 of the paper
draws them: buffer-pool pages enter through the AXI interface into page
buffers, Striders cleanse them into raw training tuples, and the
multi-threaded execution engine consumes those tuples to run the learning
algorithm.  The result is a single object that can train a model directly
from binary database pages and report the hardware activity it generated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Mapping

import numpy as np

from repro.hw.access_engine import AccessEngine, AccessEngineStats
from repro.hw.execution_engine import EngineRunStats, ExecutionEngine, TrainingResult
from repro.hw.fpga import FPGASpec
from repro.hw.tree_bus import TreeBus
from repro.rdbms.types import Schema
from repro.reliability.retry import RetryPolicy, RetryStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (compiler imports hw)
    from repro.compiler.execution_binary import ExecutionBinary

TupleBinder = Callable[[np.ndarray], dict[str, np.ndarray | float]]
BatchBinder = Callable[[np.ndarray], dict[str, np.ndarray]]


@dataclass
class AcceleratorRunResult:
    """Functional result + hardware activity of one accelerated training run."""

    training: TrainingResult
    access_stats: AccessEngineStats
    engine_stats: EngineRunStats
    tuples_extracted: int
    #: producer-restart / fault counters (all zero on a fault-free run).
    retry_stats: RetryStats = field(default_factory=RetryStats)
    #: WAL LSN the run's page scan was pinned to (set by the caller that
    #: owns the database; the accelerator itself never sees the WAL).
    snapshot_lsn: int = 0

    @property
    def models(self) -> dict[str, np.ndarray]:
        return self.training.models


@dataclass
class DAnAAccelerator:
    """A generated accelerator instance bound to one compiled UDF."""

    binary: ExecutionBinary
    schema: Schema
    fpga: FPGASpec
    access_engine: AccessEngine = field(init=False)
    execution_engine: ExecutionEngine = field(init=False)

    def __post_init__(self) -> None:
        design = self.binary.design
        self.access_engine = AccessEngine(
            config=design.access_engine_config,
            program=self.binary.strider.program,
            schema=self.schema,
            fpga=self.fpga,
        )
        self.execution_engine = ExecutionEngine(
            graph=self.binary.graph,
            schedule=self.binary.thread_schedule,
            threads=design.threads,
            tree_bus=TreeBus(alu_count=design.aus_per_cluster),
        )

    # ------------------------------------------------------------------ #
    # end-to-end functional execution
    # ------------------------------------------------------------------ #
    def extract(self, page_images: Iterable[bytes]) -> np.ndarray:
        """Run only the access engine: binary pages → float tuple matrix."""
        return self.access_engine.extract_table(page_images)

    def train_from_pages(
        self,
        page_images: Iterable[bytes],
        initial_models: Mapping[str, np.ndarray],
        bind_tuple: TupleBinder,
        epochs: int,
        convergence_check: bool = True,
        bind_batch: BatchBinder | None = None,
        shuffle: bool = False,
        rng: np.random.Generator | None = None,
        stream: bool = True,
        retry: RetryPolicy | None = None,
    ) -> AcceleratorRunResult:
        """Extract tuples with Striders, then train on the execution engine.

        ``stream=True`` (the default) pipelines the two engines like the
        paper's hardware: the Strider page walk runs on a producer thread
        behind a bounded double buffer and the first training epoch
        consumes batches as they decode.  ``stream=False`` materialises the
        whole table first — the PR-2 behaviour, kept as the overlap oracle.
        Models and counters are identical either way.  A ``retry`` policy
        makes the streaming producer restartable after transient faults
        (see :meth:`AccessEngine.stream_table`).
        """
        retry_stats = RetryStats()
        if stream:
            # The buffer pool is not thread-safe, so page images are pulled
            # on this thread; only the Strider walk + decode move to the
            # producer thread (that is where the extraction time goes).
            source = self.access_engine.stream_table(list(page_images), retry=retry)
            try:
                training = self.execution_engine.train(
                    rows=None,
                    initial_models=initial_models,
                    bind_tuple=bind_tuple,
                    epochs=epochs,
                    convergence_check=convergence_check,
                    bind_batch=bind_batch,
                    shuffle=shuffle,
                    rng=rng,
                    source=source,
                )
            except BaseException:
                source.abort()  # release a producer blocked mid-stream
                raise
            tuples_extracted = len(source.rows())
            retry_stats.merge(source.retry_stats)
        else:
            rows = self.access_engine.extract_table(page_images)
            training = self.execution_engine.train(
                rows=rows,
                initial_models=initial_models,
                bind_tuple=bind_tuple,
                epochs=epochs,
                convergence_check=convergence_check,
                bind_batch=bind_batch,
                shuffle=shuffle,
                rng=rng,
            )
            tuples_extracted = len(rows)
        return AcceleratorRunResult(
            training=training,
            access_stats=self.access_engine.stats,
            engine_stats=self.execution_engine.stats,
            tuples_extracted=tuples_extracted,
            retry_stats=retry_stats,
        )

    def score_from_pages(
        self,
        page_images: Iterable[bytes],
        models: Mapping[str, np.ndarray],
        inference,
        path: str = "batched",
        batch_size: int | None = None,
    ) -> tuple[np.ndarray, list[int]]:
        """Forward-only scoring: bulk Strider page walk + inference engine.

        The access engine cleanses the pages exactly as it does for
        training (same bulk walk, same counters); ``inference`` — a
        :class:`repro.serving.InferenceEngine`, duck-typed so ``hw`` keeps
        no dependency on the serving layer — evaluates the forward pass and
        books its schedule-derived cycles.  Returns the predictions plus
        the per-page tuple counts (the scorer needs them to reassemble
        partitioned predictions in storage order).
        """
        chunks = list(self.access_engine.process_pages(page_images))
        sizes = [len(chunk) for chunk in chunks]
        rows = (
            np.vstack(chunks) if chunks else np.empty((0, len(self.schema)))
        )
        predictions = inference.score(rows, models, path=path, batch_size=batch_size)
        return predictions, sizes

    def score_stream_from_pages(
        self,
        page_images: Iterable[bytes],
        models: Mapping[str, np.ndarray],
        inference,
        batch_size: int,
        path: str = "batched",
        retry: RetryPolicy | None = None,
        retry_stats: RetryStats | None = None,
    ) -> tuple[np.ndarray, list[int]]:
        """Streaming scan-and-score: the page walk overlaps the forward tape.

        The serving twin of :meth:`train_from_pages`'s ``stream=True`` path:
        the bulk Strider page walk + payload decode run on a
        :class:`~repro.runtime.BatchSource` producer thread behind a bounded
        double buffer, while this thread scores each micro-batch on the
        forward tape as soon as it is assembled.  Batch boundaries are
        computed over the logical concatenation of the page chunks, so every
        scored micro-batch — and therefore every prediction and every
        schedule-derived counter — is bit-identical to
        :meth:`score_from_pages` with the same ``batch_size``.

        Args:
            page_images: binary page images, in storage order.
            models: the model parameter mapping to score with.
            inference: a duck-typed ``InferenceEngine`` (``hw`` keeps no
                dependency on the serving layer).
            batch_size: micro-batch size (must be resolved by the caller;
                this layer has no default).
            path: ``"batched"`` (forward tape) or ``"per_tuple"`` (oracle).
            retry: optional policy making the producer restartable after a
                transient fault (resets the access counters and per-page
                sizes, then re-walks the pages — results bit-identical).
            retry_stats: optional counters the producer's restarts are
                merged into once the stream drains.

        Returns:
            ``(predictions, per_page_tuple_counts)`` exactly like
            :meth:`score_from_pages`.
        """
        from repro.runtime import BatchSource

        images = list(page_images)
        sizes: list[int] = []

        def record_sizes(chunks: Iterable[np.ndarray]) -> Iterable[np.ndarray]:
            # Runs on the producer thread; complete once the stream drains.
            for chunk in chunks:
                sizes.append(len(chunk))
                yield chunk

        def fresh() -> Iterable[np.ndarray]:
            # Restart hook: the re-walk re-records every page, so both the
            # counters and the size list must start from zero again.
            sizes.clear()
            self.access_engine.stats = AccessEngineStats()
            return record_sizes(self.access_engine.process_pages(images))

        source = BatchSource(
            record_sizes(self.access_engine.process_pages(images)),
            n_columns=len(self.schema),
            chunk_factory=fresh if retry is not None else None,
            retry=retry,
        )
        chunks_out: list[np.ndarray] = []
        try:
            for batch in source.batches(batch_size):
                chunks_out.append(
                    inference.score(batch, models, path=path, batch_size=len(batch))
                )
        except BaseException:
            source.abort()  # release a producer blocked mid-stream
            raise
        if retry_stats is not None:
            retry_stats.merge(source.retry_stats)
        if chunks_out:
            predictions = np.concatenate(chunks_out, axis=0)
        else:
            # Empty table: one empty score call recovers the output dims.
            predictions = inference.score(
                np.empty((0, len(self.schema))), models, path=path,
                batch_size=batch_size,
            )
        return predictions, sizes

    def train_from_rows(
        self,
        rows: np.ndarray,
        initial_models: Mapping[str, np.ndarray],
        bind_tuple: TupleBinder,
        epochs: int,
        convergence_check: bool = True,
        bind_batch: BatchBinder | None = None,
        shuffle: bool = False,
        rng: np.random.Generator | None = None,
    ) -> AcceleratorRunResult:
        """Train on already-extracted tuples (the "without Striders" path)."""
        training = self.execution_engine.train(
            rows=rows,
            initial_models=initial_models,
            bind_tuple=bind_tuple,
            epochs=epochs,
            convergence_check=convergence_check,
            bind_batch=bind_batch,
            shuffle=shuffle,
            rng=rng,
        )
        return AcceleratorRunResult(
            training=training,
            access_stats=self.access_engine.stats,
            engine_stats=self.execution_engine.stats,
            tuples_extracted=len(rows),
        )
