"""Functional + cycle-approximate simulation of the DAnA accelerator."""

from repro.hw.accelerator import AcceleratorRunResult, DAnAAccelerator
from repro.hw.access_engine import (
    AccessEngine,
    AccessEngineConfig,
    AccessEngineStats,
    PayloadDecoder,
)
from repro.hw.alu import ALU
from repro.hw.analytic_cluster import AnalyticCluster
from repro.hw.analytic_unit import AnalyticUnit
from repro.hw.execution_engine import (
    EngineRunStats,
    ExecutionEngine,
    TrainingResult,
)
from repro.hw.fpga import ARRIA_10, DEFAULT_FPGA, ULTRASCALE_PLUS_VU9P, FPGASpec
from repro.hw.strider import Strider, StriderResult, StriderStats
from repro.hw.tree_bus import TreeBus, TreeBusStats

__all__ = [
    "ALU",
    "ARRIA_10",
    "AcceleratorRunResult",
    "AccessEngine",
    "AccessEngineConfig",
    "AccessEngineStats",
    "AnalyticCluster",
    "AnalyticUnit",
    "DAnAAccelerator",
    "DEFAULT_FPGA",
    "EngineRunStats",
    "ExecutionEngine",
    "FPGASpec",
    "PayloadDecoder",
    "Strider",
    "StriderResult",
    "StriderStats",
    "TrainingResult",
    "TreeBus",
    "TreeBusStats",
    "ULTRASCALE_PLUS_VU9P",
]
