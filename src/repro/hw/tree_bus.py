"""Computationally-enabled tree bus that merges per-thread results.

"Results across the threads are combined via a computationally-enabled tree
bus in accordance to the merge function.  This bus has attached ALUs to
perform computations on in-flight data." (paper §5.2)

The tree bus combines the merge-node value of every active thread pairwise,
level by level, using the merge operator, so merging ``T`` threads of an
``E``-element vector costs ``ceil(log2(T))`` levels of ``E`` element-wise
operations each.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ExecutionEngineError
from repro.dsl.operations import Operator
from repro.hw.alu import ALU


@dataclass
class TreeBusStats:
    merges_performed: int = 0
    levels_traversed: int = 0
    operations_executed: int = 0
    cycles: int = 0


class TreeBus:
    """Pairwise reduction network across execution-engine threads."""

    def __init__(self, alu_count: int = 8, alu: ALU | None = None) -> None:
        if alu_count < 1:
            raise ExecutionEngineError("the tree bus needs at least one ALU")
        self.alu_count = alu_count
        self.alu = alu or ALU()
        self.stats = TreeBusStats()

    def merge(self, values: list[np.ndarray], operator: Operator) -> np.ndarray:
        """Combine per-thread arrays pairwise with ``operator``."""
        if not values:
            raise ExecutionEngineError("cannot merge an empty set of thread results")
        current = [np.asarray(v, dtype=np.float64) for v in values]
        element_count = int(np.asarray(current[0]).size)
        value_count = len(current)
        while len(current) > 1:
            nxt: list[np.ndarray] = []
            for i in range(0, len(current) - 1, 2):
                left, right = current[i], current[i + 1]
                combined = np.vectorize(
                    lambda a, b: self.alu.execute(operator, float(a), float(b))
                )(left, right) if left.size <= 64 else self._bulk(operator, left, right)
                nxt.append(np.asarray(combined, dtype=np.float64))
            if len(current) % 2 == 1:
                nxt.append(current[-1])
            current = nxt
        self.account_merge(value_count, element_count)
        return current[0]

    def account_merge(self, value_count: int, element_count: int, repeat: int = 1) -> None:
        """Book the stats of ``repeat`` pairwise merges of ``value_count`` values.

        Single source of truth for the bus cost model: :meth:`merge` calls
        it after materialising the reduction, and the batched execution
        tape — which folds the reduction into one ``ufunc.reduce`` over the
        batch axis — calls it directly, so both paths record identical
        counters.  ``repeat`` bulk-books a run of identical merges (the
        sharded lock-step executor performs one per vector step) without
        re-walking the levels per merge.
        """
        if value_count < 1:
            raise ExecutionEngineError("cannot merge an empty set of thread results")
        if repeat < 1:
            return
        remaining = value_count
        levels = 0
        while remaining > 1:
            pairs = remaining // 2
            self.stats.operations_executed += repeat * pairs * element_count
            self.stats.cycles += repeat * math.ceil(element_count / self.alu_count)
            remaining -= pairs
            levels += 1
        self.stats.merges_performed += repeat
        self.stats.levels_traversed += repeat * levels

    def merge_cycles(self, thread_count: int, element_count: int) -> int:
        """Analytic cycle cost of merging without executing it."""
        if thread_count <= 1:
            return 0
        levels = math.ceil(math.log2(thread_count))
        return levels * math.ceil(element_count / self.alu_count)

    def _bulk(self, operator: Operator, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        """Vectorised fallback for wide merges (functionally identical)."""
        if operator is Operator.ADD:
            return left + right
        if operator is Operator.MUL:
            return left * right
        if operator is Operator.SUB:
            return left - right
        if operator is Operator.DIV:
            return left / right
        raise ExecutionEngineError(f"unsupported merge operator {operator.value!r}")
