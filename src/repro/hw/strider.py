"""Functional + cycle-approximate simulator of one Strider (paper §5.1).

A Strider walks one database page that the access engine has staged in a
page buffer.  It executes the Strider ISA (:mod:`repro.isa.strider_isa`):
it reads the page header to locate the line pointers and tuple data,
chases the pointers, strips tuple headers ("cleansing") and pushes the raw
attribute payloads into an output FIFO that feeds the execution engine.

The simulator is faithful at the byte level — it only ever sees the binary
page image — and approximates time by charging one cycle per instruction
plus extra cycles for multi-word page-buffer reads (the BRAM read width of
the target FPGA bounds how many bytes move per cycle).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import StriderError
from repro.isa.strider_isa import (
    NUM_CONFIG_REGISTERS,
    NUM_TEMP_REGISTERS,
    Operand,
    OperandKind,
    StriderInstruction,
    StriderOpcode,
    StriderProgram,
)

_WORD_MASK_64 = (1 << 64) - 1


@dataclass
class StriderStats:
    """Execution counters for one Strider run over one page."""

    instructions_executed: int = 0
    cycles: int = 0
    bytes_read: int = 0
    bytes_emitted: int = 0
    tuples_emitted: int = 0
    loop_iterations: int = 0


@dataclass
class StriderResult:
    """Output of walking one page: cleansed tuple payloads plus statistics."""

    payloads: list[bytes] = field(default_factory=list)
    stats: StriderStats = field(default_factory=StriderStats)


class Strider:
    """Executes a :class:`StriderProgram` against one binary page image."""

    def __init__(
        self,
        program: StriderProgram,
        read_width_bytes: int = 8,
        max_instructions: int = 2_000_000,
    ) -> None:
        if read_width_bytes <= 0:
            raise StriderError("read width must be positive")
        self.program = program
        self.read_width_bytes = read_width_bytes
        self.max_instructions = max_instructions

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def process_page(self, page_image: bytes) -> StriderResult:
        """Run the program over one page and collect the emitted payloads."""
        state = _StriderState(page_image, self.program.constants)
        result = StriderResult()
        instructions = self.program.instructions
        pc = 0
        loop_entry: int | None = None
        while pc < len(instructions):
            if result.stats.instructions_executed >= self.max_instructions:
                raise StriderError(
                    "instruction budget exhausted; the Strider program does not terminate"
                )
            inst = instructions[pc]
            result.stats.instructions_executed += 1
            result.stats.cycles += self._instruction_cycles(inst, state)
            if inst.opcode is StriderOpcode.BENTR:
                loop_entry = pc + 1
                pc += 1
                continue
            if inst.opcode is StriderOpcode.BEXIT:
                if self._branch_exit_taken(inst, state):
                    loop_entry = None
                    pc += 1
                else:
                    if loop_entry is None:
                        raise StriderError("bexit executed without a preceding bentr")
                    result.stats.loop_iterations += 1
                    pc = loop_entry
                continue
            self._execute(inst, state, result)
            pc += 1
        result.stats.bytes_read = state.bytes_read
        return result

    # ------------------------------------------------------------------ #
    # instruction execution
    # ------------------------------------------------------------------ #
    def _execute(self, inst: StriderInstruction, state: "_StriderState", result: StriderResult) -> None:
        op = inst.opcode
        if op is StriderOpcode.READB:
            addr = state.value(inst.op0)
            nbytes = state.value(inst.op1)
            raw = state.read_page(addr, nbytes)
            state.staging = raw
            state.store(inst.op2, int.from_bytes(raw[:8], "little"))
        elif op is StriderOpcode.EXTRB:
            offset = state.value(inst.op0)
            nbytes = state.value(inst.op1)
            if offset + nbytes > len(state.staging):
                raise StriderError(
                    f"extrB reads bytes [{offset}, {offset + nbytes}) beyond the "
                    f"{len(state.staging)}-byte staging register"
                )
            value = int.from_bytes(state.staging[offset : offset + nbytes], "little")
            state.store(inst.op2, value)
        elif op is StriderOpcode.EXTRBI:
            bit_offset = state.value(inst.op0)
            nbits = state.value(inst.op1)
            word = int.from_bytes(state.staging[:8], "little")
            value = (word >> bit_offset) & ((1 << nbits) - 1)
            state.store(inst.op2, value)
        elif op is StriderOpcode.WRITEB:
            addr = state.value(inst.op0)
            nbytes = state.value(inst.op1)
            value = state.value(inst.op2)
            state.write_page(addr, value.to_bytes(max(1, nbytes), "little")[:nbytes])
        elif op is StriderOpcode.CLN:
            strip = state.value(inst.op0)
            length = state.value(inst.op1)
            mode = state.value(inst.op2)
            payload = state.staging[strip:] if length == 0 else state.staging[strip : strip + length]
            state.staging = payload
            if mode != 0:
                result.payloads.append(bytes(payload))
                result.stats.tuples_emitted += 1
                result.stats.bytes_emitted += len(payload)
        elif op is StriderOpcode.INS:
            value = state.value(inst.op0)
            count = max(1, state.value(inst.op1))
            state.staging = state.staging + bytes([value & 0xFF]) * count
        elif op in (StriderOpcode.AD, StriderOpcode.SUB, StriderOpcode.MUL):
            a = state.value(inst.op1)
            b = state.value(inst.op2)
            if op is StriderOpcode.AD:
                value = a + b
            elif op is StriderOpcode.SUB:
                value = a - b
            else:
                value = a * b
            state.store(inst.op0, value & _WORD_MASK_64)
        else:  # pragma: no cover - BENTR/BEXIT handled by the main loop
            raise StriderError(f"unexpected opcode {op}")

    def _branch_exit_taken(self, inst: StriderInstruction, state: "_StriderState") -> bool:
        condition = state.value(inst.op0)
        a = state.value(inst.op1)
        b = state.value(inst.op2)
        if condition == 0:
            return a == b
        if condition == 1:
            return a >= b
        if condition == 2:
            return a < b
        if condition == 3:
            return a != b
        raise StriderError(f"unknown bexit condition code {condition}")

    def _instruction_cycles(self, inst: StriderInstruction, state: "_StriderState") -> int:
        """Cycle cost: 1 per instruction, plus extra BRAM words for big reads."""
        if inst.opcode in (StriderOpcode.READB, StriderOpcode.CLN, StriderOpcode.WRITEB):
            nbytes = state.value(inst.op1)
            if inst.opcode is StriderOpcode.CLN and nbytes == 0:
                nbytes = max(0, len(state.staging) - state.value(inst.op0))
            words = max(1, -(-nbytes // self.read_width_bytes))
            return words
        return 1


class _StriderState:
    """Register file, staging register and page-buffer view of one Strider."""

    def __init__(self, page_image: bytes, constants: dict[int, int]) -> None:
        self.page = bytearray(page_image)
        self.config = [0] * NUM_CONFIG_REGISTERS
        self.temps = [0] * NUM_TEMP_REGISTERS
        self.staging = b""
        self.bytes_read = 0
        for reg, value in constants.items():
            if not 0 <= reg < NUM_CONFIG_REGISTERS:
                raise StriderError(f"constant register index {reg} out of range")
            self.config[reg] = value

    def value(self, operand: Operand) -> int:
        if operand.kind is OperandKind.IMMEDIATE:
            return operand.value
        if operand.kind is OperandKind.CONFIG:
            return self.config[operand.value]
        return self.temps[operand.value]

    def store(self, operand: Operand, value: int) -> None:
        if operand.kind is OperandKind.CONFIG:
            self.config[operand.value] = value
        elif operand.kind is OperandKind.TEMP:
            self.temps[operand.value] = value
        # Storing to an immediate destination discards the value (used by
        # instructions that only care about the staging register).

    def read_page(self, addr: int, nbytes: int) -> bytes:
        if addr < 0 or addr + nbytes > len(self.page):
            raise StriderError(
                f"page-buffer read [{addr}, {addr + nbytes}) out of bounds "
                f"(page is {len(self.page)} bytes)"
            )
        self.bytes_read += nbytes
        return bytes(self.page[addr : addr + nbytes])

    def write_page(self, addr: int, data: bytes) -> None:
        if addr < 0 or addr + len(data) > len(self.page):
            raise StriderError(
                f"page-buffer write [{addr}, {addr + len(data)}) out of bounds"
            )
        self.page[addr : addr + len(data)] = data
