"""Functional + cycle-approximate simulator of one Strider (paper §5.1).

A Strider walks one database page that the access engine has staged in a
page buffer.  It executes the Strider ISA (:mod:`repro.isa.strider_isa`):
it reads the page header to locate the line pointers and tuple data,
chases the pointers, strips tuple headers ("cleansing") and pushes the raw
attribute payloads into an output FIFO that feeds the execution engine.

The simulator is faithful at the byte level — it only ever sees the binary
page image — and approximates time by charging one cycle per instruction
plus extra cycles for multi-word page-buffer reads (the BRAM read width of
the target FPGA bounds how many bytes move per cycle).

Two execution modes are provided.  The **instruction interpreter**
(:meth:`Strider.process_page`) executes the program word by word and is the
validation oracle.  The **bulk page walk** (:meth:`Strider.process_page_bulk`)
recognises the canonical page-walk idiom the Strider compiler emits
(header reads → pointer-chasing loop → cleanse/emit), parses all line
pointers with one NumPy reinterpret and slices every payload directly from
the page image — producing byte-identical payloads and the exact
:class:`StriderStats` the interpreter would have recorded, at a fraction of
the cost.  Programs that do not match the idiom (or pages whose headers
are inconsistent) silently fall back to the interpreter.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import StriderError
from repro.isa.strider_isa import (
    NUM_CONFIG_REGISTERS,
    NUM_TEMP_REGISTERS,
    Operand,
    OperandKind,
    StriderInstruction,
    StriderOpcode,
    StriderProgram,
)

_WORD_MASK_64 = (1 << 64) - 1


@dataclass
class StriderStats:
    """Execution counters for one Strider run over one page."""

    instructions_executed: int = 0
    cycles: int = 0
    bytes_read: int = 0
    bytes_emitted: int = 0
    tuples_emitted: int = 0
    loop_iterations: int = 0


@dataclass
class StriderResult:
    """Output of walking one page: cleansed tuple payloads plus statistics."""

    payloads: list[bytes] = field(default_factory=list)
    stats: StriderStats = field(default_factory=StriderStats)


@dataclass(frozen=True)
class _PageWalkTemplate:
    """Static parameters recovered from the canonical compiled page walk.

    The Strider compiler always emits the same 13-instruction idiom: four
    header reads, a cursor initialisation, then a 7-instruction
    pointer-chasing loop.  Matching it once lets the bulk walk replace the
    per-tuple interpreter loop with array operations while still charging
    exactly the cycles the interpreter would.
    """

    header_reads: tuple[tuple[int, int], ...]  # (page offset, width) per READB
    free_start_offset: int                     # where the free-space start lives
    free_start_width: int
    line_pointer_start: int
    line_pointer_size: int
    strip_bytes: int                           # tuple header stripped by CLN
    emits: bool                                # CLN mode pushes the payload


def _static_value(
    operand: Operand,
    constants: dict[int, int],
    used_config: set[int] | None = None,
) -> int | None:
    """Resolve an operand that must be known before execution starts.

    ``used_config`` collects the configuration registers a resolution relied
    on, so the matcher can reject programs where a header read overwrites
    one of them at runtime (the constant-pool value would be stale).
    """
    if operand.kind is OperandKind.IMMEDIATE:
        return operand.value
    if operand.kind is OperandKind.CONFIG:
        if used_config is not None and operand.value in constants:
            used_config.add(operand.value)
        return constants.get(operand.value)
    return None


def _match_page_walk(program: StriderProgram) -> _PageWalkTemplate | None:
    """Recognise the compiler's page-walk idiom; ``None`` if it differs."""
    inst = program.instructions
    constants = program.constants
    if len(inst) != 13:
        return None
    expected = [
        StriderOpcode.READB, StriderOpcode.READB, StriderOpcode.READB,
        StriderOpcode.READB, StriderOpcode.AD, StriderOpcode.BENTR,
        StriderOpcode.READB, StriderOpcode.EXTRB, StriderOpcode.EXTRB,
        StriderOpcode.READB, StriderOpcode.CLN, StriderOpcode.AD,
        StriderOpcode.BEXIT,
    ]
    if [i.opcode for i in inst] != expected:
        return None
    used_config: set[int] = set()
    header_reads: list[tuple[int, int]] = []
    header_dest: dict[int, int] = {}  # config register -> header read index
    for idx in range(4):
        read = inst[idx]
        offset = _static_value(read.op0, constants, used_config)
        width = _static_value(read.op1, constants, used_config)
        if offset is None or width is None or read.op2.kind is not OperandKind.CONFIG:
            return None
        header_reads.append((offset, width))
        header_dest[read.op2.value] = idx
    cursor_init = inst[4]
    if cursor_init.op0.kind is not OperandKind.TEMP:
        return None
    cursor_reg = cursor_init.op0.value
    base = _static_value(cursor_init.op1, constants, used_config)
    bias = _static_value(cursor_init.op2, constants, used_config)
    if base is None or bias is None:
        return None
    lp_start = base + bias
    lp_read = inst[6]
    if lp_read.op0.kind is not OperandKind.TEMP or lp_read.op0.value != cursor_reg:
        return None
    lp_size = _static_value(lp_read.op1, constants, used_config)
    # The bulk walk reinterprets pointers as (u16 offset, u16 length) pairs,
    # so the extracts must read exactly those fields of a 4-byte pointer.
    extr_off, extr_len = inst[7], inst[8]
    if lp_size != 4:
        return None
    if (_static_value(extr_off.op0, constants), _static_value(extr_off.op1, constants)) != (0, 2):
        return None
    if (_static_value(extr_len.op0, constants), _static_value(extr_len.op1, constants)) != (2, 2):
        return None
    if extr_off.op2.kind is not OperandKind.TEMP or extr_len.op2.kind is not OperandKind.TEMP:
        return None
    off_reg, len_reg = extr_off.op2.value, extr_len.op2.value
    tuple_read = inst[9]
    if (
        tuple_read.op0.kind is not OperandKind.TEMP
        or tuple_read.op0.value != off_reg
        or tuple_read.op1.kind is not OperandKind.TEMP
        or tuple_read.op1.value != len_reg
    ):
        return None
    cln = inst[10]
    strip = _static_value(cln.op0, constants, used_config)
    cln_length = _static_value(cln.op1, constants, used_config)
    mode = _static_value(cln.op2, constants, used_config)
    if strip is None or cln_length != 0 or mode is None:
        return None
    advance = inst[11]
    if (
        advance.op0.kind is not OperandKind.TEMP
        or advance.op0.value != cursor_reg
        or advance.op1.kind is not OperandKind.TEMP
        or advance.op1.value != cursor_reg
        or _static_value(advance.op2, constants, used_config) != lp_size
    ):
        return None
    bexit = inst[12]
    if (
        _static_value(bexit.op0, constants, used_config) != 1  # cursor >= bound
        or bexit.op1.kind is not OperandKind.TEMP
        or bexit.op1.value != cursor_reg
        or bexit.op2.kind is not OperandKind.CONFIG
        or bexit.op2.value not in header_dest
    ):
        return None
    # A header READB overwrites its destination register at runtime: any
    # operand resolved from the constant pool that aliases one of those
    # registers would execute with a stale value here, so the program is
    # not the idiom — let the interpreter run it.
    if used_config & header_dest.keys():
        return None
    fs_offset, fs_width = header_reads[header_dest[bexit.op2.value]]
    return _PageWalkTemplate(
        header_reads=tuple(header_reads),
        free_start_offset=fs_offset,
        free_start_width=fs_width,
        line_pointer_start=lp_start,
        line_pointer_size=lp_size,
        strip_bytes=strip,
        emits=mode != 0,
    )


class Strider:
    """Executes a :class:`StriderProgram` against one binary page image."""

    def __init__(
        self,
        program: StriderProgram,
        read_width_bytes: int = 8,
        max_instructions: int = 2_000_000,
    ) -> None:
        if read_width_bytes <= 0:
            raise StriderError("read width must be positive")
        self.program = program
        self.read_width_bytes = read_width_bytes
        self.max_instructions = max_instructions
        self._page_walk = _match_page_walk(program)

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def process_page(self, page_image: bytes) -> StriderResult:
        """Run the program over one page and collect the emitted payloads."""
        state = _StriderState(page_image, self.program.constants)
        result = StriderResult()
        instructions = self.program.instructions
        pc = 0
        loop_entry: int | None = None
        while pc < len(instructions):
            if result.stats.instructions_executed >= self.max_instructions:
                raise StriderError(
                    "instruction budget exhausted; the Strider program does not terminate"
                )
            inst = instructions[pc]
            result.stats.instructions_executed += 1
            result.stats.cycles += self._instruction_cycles(inst, state)
            if inst.opcode is StriderOpcode.BENTR:
                loop_entry = pc + 1
                pc += 1
                continue
            if inst.opcode is StriderOpcode.BEXIT:
                if self._branch_exit_taken(inst, state):
                    loop_entry = None
                    pc += 1
                else:
                    if loop_entry is None:
                        raise StriderError("bexit executed without a preceding bentr")
                    result.stats.loop_iterations += 1
                    pc = loop_entry
                continue
            self._execute(inst, state, result)
            pc += 1
        result.stats.bytes_read = state.bytes_read
        return result

    def process_page_bulk(self, page_image: bytes) -> StriderResult:
        """Fast page walk: same payloads and stats as :meth:`process_page`.

        Used by the access engine on the hot path; any program or page the
        bulk walk cannot prove equivalent falls back to the interpreter.
        """
        template = self._page_walk
        if template is not None:
            result = self._bulk_walk(page_image, template)
            if result is not None:
                return result
        return self.process_page(page_image)

    def _bulk_walk(
        self, page: bytes, t: _PageWalkTemplate
    ) -> StriderResult | None:
        page_len = len(page)
        fs_end = t.free_start_offset + t.free_start_width
        if fs_end > page_len or t.line_pointer_start >= page_len:
            return None
        free_start = int.from_bytes(page[t.free_start_offset : fs_end], "little")
        span = free_start - t.line_pointer_start
        # Zero or misaligned pointer arrays take the interpreter's exact
        # (and exactly as odd) behaviour instead of approximating it here.
        if span <= 0 or span % t.line_pointer_size:
            return None
        if t.line_pointer_start + span > page_len:
            return None
        count = span // t.line_pointer_size
        pointers = np.frombuffer(
            page, dtype="<u2", count=2 * count, offset=t.line_pointer_start
        ).reshape(count, 2)
        offsets = pointers[:, 0].astype(np.int64)
        lengths = pointers[:, 1].astype(np.int64)
        if bool((offsets + lengths > page_len).any()):
            return None
        strip = t.strip_bytes
        payload_lengths = np.maximum(lengths - strip, 0)
        result = StriderResult()
        if t.emits:
            result.payloads = [
                page[o + strip : o + l]
                for o, l in zip(offsets.tolist(), lengths.tolist())
            ]
            result.stats.tuples_emitted = count
            result.stats.bytes_emitted = int(payload_lengths.sum())
        # Statistics: exactly what the interpreter charges, computed in
        # closed form.  Per loop pass: READB pointer, EXTRB, EXTRB, READB
        # tuple, CLN, AD, BEXIT.
        rw = self.read_width_bytes
        stats = result.stats
        stats.instructions_executed = 6 + 7 * count
        stats.loop_iterations = count - 1
        stats.bytes_read = (
            sum(width for _offset, width in t.header_reads)
            + count * t.line_pointer_size
            + int(lengths.sum())
        )
        header_cycles = sum(
            max(1, -(-width // rw)) for _offset, width in t.header_reads
        )
        pointer_words = max(1, -(-t.line_pointer_size // rw))
        tuple_words = np.maximum(1, -(-lengths // rw))
        cleanse_words = np.maximum(1, -(-payload_lengths // rw))
        stats.cycles = (
            header_cycles
            + 2  # cursor init AD + BENTR
            + count * (pointer_words + 4)  # two EXTRBs, AD, BEXIT per pass
            + int(tuple_words.sum())
            + int(cleanse_words.sum())
        )
        return result

    # ------------------------------------------------------------------ #
    # instruction execution
    # ------------------------------------------------------------------ #
    def _execute(self, inst: StriderInstruction, state: "_StriderState", result: StriderResult) -> None:
        op = inst.opcode
        if op is StriderOpcode.READB:
            addr = state.value(inst.op0)
            nbytes = state.value(inst.op1)
            raw = state.read_page(addr, nbytes)
            state.staging = raw
            state.store(inst.op2, int.from_bytes(raw[:8], "little"))
        elif op is StriderOpcode.EXTRB:
            offset = state.value(inst.op0)
            nbytes = state.value(inst.op1)
            if offset + nbytes > len(state.staging):
                raise StriderError(
                    f"extrB reads bytes [{offset}, {offset + nbytes}) beyond the "
                    f"{len(state.staging)}-byte staging register"
                )
            value = int.from_bytes(state.staging[offset : offset + nbytes], "little")
            state.store(inst.op2, value)
        elif op is StriderOpcode.EXTRBI:
            bit_offset = state.value(inst.op0)
            nbits = state.value(inst.op1)
            word = int.from_bytes(state.staging[:8], "little")
            value = (word >> bit_offset) & ((1 << nbits) - 1)
            state.store(inst.op2, value)
        elif op is StriderOpcode.WRITEB:
            addr = state.value(inst.op0)
            nbytes = state.value(inst.op1)
            value = state.value(inst.op2)
            state.write_page(addr, value.to_bytes(max(1, nbytes), "little")[:nbytes])
        elif op is StriderOpcode.CLN:
            strip = state.value(inst.op0)
            length = state.value(inst.op1)
            mode = state.value(inst.op2)
            payload = state.staging[strip:] if length == 0 else state.staging[strip : strip + length]
            state.staging = payload
            if mode != 0:
                result.payloads.append(bytes(payload))
                result.stats.tuples_emitted += 1
                result.stats.bytes_emitted += len(payload)
        elif op is StriderOpcode.INS:
            value = state.value(inst.op0)
            count = max(1, state.value(inst.op1))
            state.staging = state.staging + bytes([value & 0xFF]) * count
        elif op in (StriderOpcode.AD, StriderOpcode.SUB, StriderOpcode.MUL):
            a = state.value(inst.op1)
            b = state.value(inst.op2)
            if op is StriderOpcode.AD:
                value = a + b
            elif op is StriderOpcode.SUB:
                value = a - b
            else:
                value = a * b
            state.store(inst.op0, value & _WORD_MASK_64)
        else:  # pragma: no cover - BENTR/BEXIT handled by the main loop
            raise StriderError(f"unexpected opcode {op}")

    def _branch_exit_taken(self, inst: StriderInstruction, state: "_StriderState") -> bool:
        condition = state.value(inst.op0)
        a = state.value(inst.op1)
        b = state.value(inst.op2)
        if condition == 0:
            return a == b
        if condition == 1:
            return a >= b
        if condition == 2:
            return a < b
        if condition == 3:
            return a != b
        raise StriderError(f"unknown bexit condition code {condition}")

    def _instruction_cycles(self, inst: StriderInstruction, state: "_StriderState") -> int:
        """Cycle cost: 1 per instruction, plus extra BRAM words for big reads."""
        if inst.opcode in (StriderOpcode.READB, StriderOpcode.CLN, StriderOpcode.WRITEB):
            nbytes = state.value(inst.op1)
            if inst.opcode is StriderOpcode.CLN and nbytes == 0:
                nbytes = max(0, len(state.staging) - state.value(inst.op0))
            words = max(1, -(-nbytes // self.read_width_bytes))
            return words
        return 1


class _StriderState:
    """Register file, staging register and page-buffer view of one Strider."""

    def __init__(self, page_image: bytes, constants: dict[int, int]) -> None:
        self.page = bytearray(page_image)
        self.config = [0] * NUM_CONFIG_REGISTERS
        self.temps = [0] * NUM_TEMP_REGISTERS
        self.staging = b""
        self.bytes_read = 0
        for reg, value in constants.items():
            if not 0 <= reg < NUM_CONFIG_REGISTERS:
                raise StriderError(f"constant register index {reg} out of range")
            self.config[reg] = value

    def value(self, operand: Operand) -> int:
        if operand.kind is OperandKind.IMMEDIATE:
            return operand.value
        if operand.kind is OperandKind.CONFIG:
            return self.config[operand.value]
        return self.temps[operand.value]

    def store(self, operand: Operand, value: int) -> None:
        if operand.kind is OperandKind.CONFIG:
            self.config[operand.value] = value
        elif operand.kind is OperandKind.TEMP:
            self.temps[operand.value] = value
        # Storing to an immediate destination discards the value (used by
        # instructions that only care about the staging register).

    def read_page(self, addr: int, nbytes: int) -> bytes:
        if addr < 0 or addr + nbytes > len(self.page):
            raise StriderError(
                f"page-buffer read [{addr}, {addr + nbytes}) out of bounds "
                f"(page is {len(self.page)} bytes)"
            )
        self.bytes_read += nbytes
        return bytes(self.page[addr : addr + nbytes])

    def write_page(self, addr: int, data: bytes) -> None:
        if addr < 0 or addr + len(data) > len(self.page):
            raise StriderError(
                f"page-buffer write [{addr}, {addr + len(data)}) out of bounds"
            )
        self.page[addr : addr + len(data)] = data
