"""Arithmetic Logic Unit of an Analytic Unit.

The ALU executes both the basic mathematical operations and the complicated
non-linear operations (sigmoid, gaussian, square root); its internals are
reconfigured according to the operations required by the hDFG (paper §5.2),
which the hardware generator expresses by listing the supported operators.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.exceptions import ExecutionEngineError
from repro.dsl.operations import ALU_LATENCY, Operator


class ALU:
    """A single reconfigurable ALU supporting a fixed set of operators."""

    def __init__(self, supported_ops: Iterable[Operator] | None = None) -> None:
        self.supported_ops = frozenset(supported_ops) if supported_ops is not None else None

    def supports(self, op: Operator) -> bool:
        return self.supported_ops is None or op in self.supported_ops

    def latency(self, op: Operator) -> int:
        return max(1, ALU_LATENCY.get(op, 1))

    def execute(self, op: Operator, a: float, b: float = 0.0) -> float:
        """Apply ``op`` to scalar operands."""
        if not self.supports(op):
            raise ExecutionEngineError(
                f"the ALU was not synthesised with support for {op.value!r}"
            )
        if op is Operator.ADD:
            return a + b
        if op is Operator.SUB:
            return a - b
        if op is Operator.MUL:
            return a * b
        if op is Operator.DIV:
            if b == 0.0:
                raise ExecutionEngineError("division by zero in the execution engine")
            return a / b
        if op is Operator.GT:
            return 1.0 if a > b else 0.0
        if op is Operator.LT:
            return 1.0 if a < b else 0.0
        if op is Operator.SIGMOID:
            return 1.0 / (1.0 + math.exp(-a))
        if op is Operator.GAUSSIAN:
            return math.exp(-(a * a))
        if op is Operator.SQRT:
            if a < 0:
                raise ExecutionEngineError("square root of a negative value")
            return math.sqrt(a)
        raise ExecutionEngineError(f"ALU cannot execute {op.value!r} directly")
