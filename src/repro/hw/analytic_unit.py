"""Analytic Unit (AU): the basic compute element of the execution engine.

An AU (paper Figure 7b) owns a private data-memory scratchpad, can read
operands from that memory, from the registers of its left/right neighbours,
from the intra-cluster bus FIFO or from an immediate, runs the operation
through its ALU and routes the result to memory, its neighbours, the bus or
the thread output.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.exceptions import ExecutionEngineError
from repro.dsl.operations import Operator
from repro.hw.alu import ALU
from repro.isa.engine_isa import AUInstruction, AUOperand, DestKind, SourceKind


@dataclass
class AUStats:
    operations_executed: int = 0
    memory_reads: int = 0
    memory_writes: int = 0
    neighbor_reads: int = 0
    bus_reads: int = 0


class AnalyticUnit:
    """One pipelined compute lane inside an Analytic Cluster."""

    def __init__(self, index: int, alu: ALU | None = None, memory_words: int = 4096) -> None:
        self.index = index
        self.alu = alu or ALU()
        self.memory_words = memory_words
        self.data_memory: dict[int, float] = {}
        self.register: float = 0.0        # value visible to the neighbours
        self.bus_fifo: deque[float] = deque()
        self.stats = AUStats()
        self.left: "AnalyticUnit | None" = None
        self.right: "AnalyticUnit | None" = None

    # ------------------------------------------------------------------ #
    # memory
    # ------------------------------------------------------------------ #
    def write_memory(self, address: int, value: float) -> None:
        if address < 0 or address >= self.memory_words:
            raise ExecutionEngineError(
                f"AU{self.index} memory write to {address} outside scratchpad "
                f"of {self.memory_words} words"
            )
        self.data_memory[address] = float(value)
        self.stats.memory_writes += 1

    def read_memory(self, address: int) -> float:
        self.stats.memory_reads += 1
        try:
            return self.data_memory[address]
        except KeyError:
            raise ExecutionEngineError(
                f"AU{self.index} read of uninitialised scratchpad word {address}"
            ) from None

    # ------------------------------------------------------------------ #
    # operand fetch and execution
    # ------------------------------------------------------------------ #
    def fetch(self, operand: AUOperand) -> float:
        kind = operand.kind
        if kind is SourceKind.IMMEDIATE:
            return operand.value
        if kind is SourceKind.DATA_MEMORY:
            return self.read_memory(operand.address)
        if kind is SourceKind.LEFT_NEIGHBOR:
            self.stats.neighbor_reads += 1
            if self.left is None:
                raise ExecutionEngineError(f"AU{self.index} has no left neighbour")
            return self.left.register
        if kind is SourceKind.RIGHT_NEIGHBOR:
            self.stats.neighbor_reads += 1
            if self.right is None:
                raise ExecutionEngineError(f"AU{self.index} has no right neighbour")
            return self.right.register
        if kind is SourceKind.BUS:
            self.stats.bus_reads += 1
            if not self.bus_fifo:
                raise ExecutionEngineError(f"AU{self.index} bus FIFO is empty")
            return self.bus_fifo.popleft()
        if kind is SourceKind.NONE:
            return 0.0
        raise ExecutionEngineError(f"unknown operand source {kind}")

    def execute(self, operation: Operator, slot: AUInstruction) -> float:
        """Execute one ALU operation described by an AU slot."""
        a = self.fetch(slot.src_a)
        b = self.fetch(slot.src_b)
        result = self.alu.execute(operation, a, b)
        self.stats.operations_executed += 1
        self.register = result
        if slot.dest_kind is DestKind.DATA_MEMORY:
            self.write_memory(slot.dest_address, result)
        elif slot.dest_kind is DestKind.BUS:
            # placed on the shared intra-cluster bus by the cluster controller
            pass
        elif slot.dest_kind is DestKind.NEIGHBORS:
            pass  # the register update above makes it visible to the neighbours
        elif slot.dest_kind is DestKind.OUTPUT:
            pass  # collected by the execution engine / tree bus
        return result
