"""Multi-threaded execution engine simulator (paper §5.2).

The execution engine runs multiple threads of the update rule over
different training tuples, merges their partial results on the tree bus and
applies the post-merge computation (optimizer step) once per batch.

Three execution paths are provided:

* **batched tape path** — the default fast path: the hDFG is compiled once
  into a :class:`~repro.translator.tape.CompiledTape` of NumPy kernels and
  every merge batch is evaluated in one shot, with the tree-bus merge as a
  single reduction over the batch axis (no per-tuple Python in the epoch
  loop);
* **per-tuple functional path** — per-tuple evaluation of the hDFG with
  :class:`~repro.translator.evaluator.HDFGEvaluator`, kept as the
  correctness oracle for the tape and used when no batch binder is
  available or the graph cannot be lowered to a tape;
* **microcode path** — cycle-by-cycle execution of the compiled
  :class:`~repro.isa.engine_isa.EngineProgram` on simulated Analytic
  Clusters/Units, used by the test-suite to validate that the static
  schedule computes exactly what the hDFG specifies.

Cycle accounting uses the static schedule lengths: every consumed batch
costs ``update_rule_cycles`` (all threads run in lock-step on their own
tuple) plus the tree-bus merge cost plus ``post_merge_cycles``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

import numpy as np

from repro.exceptions import ExecutionEngineError
from repro.dsl.operations import Operator
from repro.hw.alu import ALU
from repro.hw.analytic_cluster import AnalyticCluster
from repro.hw.tree_bus import TreeBus
from repro.isa.engine_isa import SourceKind
from repro.runtime import BatchSource, EpochDriver, EpochStep
from repro.translator.evaluator import HDFGEvaluator
from repro.translator.hdfg import HDFG, NodeKind, Region
from repro.translator.tape import BatchBinder, CompiledTape, TapeCompilationError
from repro.compiler.scheduler import ThreadSchedule, node_ref

TupleBinder = Callable[[np.ndarray], dict[str, np.ndarray | float]]


@dataclass
class EngineRunStats:
    """Counters accumulated while training."""

    tuples_processed: int = 0
    batches_processed: int = 0
    epochs_completed: int = 0
    update_rule_cycles: int = 0
    merge_cycles: int = 0
    post_merge_cycles: int = 0
    convergence_cycles: int = 0

    @property
    def total_cycles(self) -> int:
        return (
            self.update_rule_cycles
            + self.merge_cycles
            + self.post_merge_cycles
            + self.convergence_cycles
        )


@dataclass
class TrainingResult:
    """Outcome of running the execution engine over a dataset."""

    models: dict[str, np.ndarray]
    epochs_run: int
    converged: bool
    stats: EngineRunStats = field(default_factory=EngineRunStats)


class ExecutionEngine:
    """Simulates the multi-threaded execution engine for one compiled UDF."""

    def __init__(
        self,
        graph: HDFG,
        schedule: ThreadSchedule,
        threads: int,
        tree_bus: TreeBus | None = None,
    ) -> None:
        if threads < 1:
            raise ExecutionEngineError("the execution engine needs at least one thread")
        self.graph = graph
        self.schedule = schedule
        self.evaluator = HDFGEvaluator(graph)
        self.tree_bus = tree_bus or TreeBus()
        self.stats = EngineRunStats()
        self._merge_nodes = [graph.node(i) for i in graph.merge_node_ids]
        self._gather_nodes = [n for n in graph.nodes() if n.kind is NodeKind.GATHER]
        # Without a merge function the update rule is inherently sequential
        # (each tuple's update must see the previous model), so parallel
        # threads would silently drop work; fall back to one thread unless
        # the model is row-addressed (Hogwild-style LRMF updates).  With a
        # merge function, the merge coefficient is the batch size the user
        # asked for and therefore bounds the usable thread count.
        if not self._merge_nodes and not self._gather_nodes:
            threads = 1
        elif self._merge_nodes:
            max_coefficient = max(
                node.merge_coefficient or 1 for node in self._merge_nodes
            )
            threads = min(threads, max_coefficient)
        self.threads = max(1, threads)
        # The merge coefficient fixes the *batch* semantics of the algorithm:
        # that many tuples contribute to one model update regardless of how
        # many hardware threads the generator allocated.  When fewer threads
        # than the coefficient are available, each thread simply consumes
        # several tuples per batch (more engine rounds, same arithmetic).
        if self._merge_nodes:
            self.batch_size = max(
                node.merge_coefficient or 1 for node in self._merge_nodes
            )
        elif self._gather_nodes:
            self.batch_size = self.threads
        else:
            self.batch_size = 1
        # Structural queries hoisted out of the per-batch hot path: which
        # node ids each variable name binds to, whether updates are
        # row-addressed, and the merge element width for the cycle model.
        self._binding_ids_by_name: dict[str, set[int]] = {}
        for binding in graph.bindings:
            self._binding_ids_by_name.setdefault(binding.name, set()).add(
                binding.node_id
            )
        self._gather_updates = self._compute_gather_updates()
        self._merge_elements = self._merge_element_count()
        # The schedule is static, so its region lengths are too — hoist
        # them (and the per-batch-size tree-bus merge cost) out of the
        # per-batch accounting hot path instead of re-deriving them from
        # the instruction stream on every consumed batch.
        self._update_rule_cycles = self.schedule.update_rule_cycles
        self._post_merge_cycles = self.schedule.post_merge_cycles
        self._convergence_cycles = self.schedule.convergence_cycles
        self._merge_cycles_by_batch: dict[int, int] = {}
        # Compile the batched tape once; graphs the tape cannot lower
        # faithfully keep the per-tuple evaluator as their only fast path.
        try:
            self.tape: CompiledTape | None = CompiledTape(graph)
        except TapeCompilationError:
            self.tape = None

    # ------------------------------------------------------------------ #
    # fast functional path
    # ------------------------------------------------------------------ #
    def train(
        self,
        rows: np.ndarray | None,
        initial_models: Mapping[str, np.ndarray],
        bind_tuple: TupleBinder | None,
        epochs: int,
        convergence_check: bool = True,
        rng: np.random.Generator | None = None,
        shuffle: bool = False,
        bind_batch: BatchBinder | None = None,
        source: BatchSource | None = None,
    ) -> TrainingResult:
        """Train over ``rows`` (or a streaming ``source``) for up to ``epochs``.

        When ``bind_batch`` is supplied and the graph lowered to a
        :class:`CompiledTape`, whole merge batches are evaluated in one
        NumPy shot; otherwise each tuple is bound with ``bind_tuple`` and
        evaluated through the per-tuple oracle.  Both paths produce the
        same models and the same schedule-derived cycle counters.

        With ``source`` (a :class:`~repro.runtime.BatchSource`) and no
        pre-extracted ``rows``, the first epoch consumes batches straight
        off the streaming extraction — the access engine's page walk
        overlaps this engine's compute — and later epochs train from the
        matrix the stream materialized.  Models, batch boundaries and cycle
        counters are identical to the fully-extracted path.
        """
        if rows is None and source is None:
            raise ExecutionEngineError("train needs rows or a batch source")
        use_tape = bind_batch is not None and self.tape is not None
        if not use_tape and bind_tuple is None:
            raise ExecutionEngineError(
                "per-tuple training requires a bind_tuple binder"
            )
        step = _SingleEngineStep(
            engine=self,
            rows=rows,
            source=source,
            bind_tuple=bind_tuple,
            bind_batch=bind_batch,
            use_tape=use_tape,
            shuffle=shuffle,
            rng=rng,
            convergence_check=convergence_check,
        )
        result = EpochDriver(step, convergence_check=convergence_check).run(
            initial_models, epochs
        )
        return TrainingResult(
            models=result.models,
            epochs_run=result.epochs_run,
            converged=result.converged,
            stats=self.stats,
        )

    def iter_batches(self, rows: np.ndarray):
        """Slice ``rows`` into the engine's consecutive merge batches."""
        batch_size = self.batch_size
        for start in range(0, len(rows), batch_size):
            yield rows[start : start + batch_size]

    def account_batch(self, batch_len: int, account_tree_bus: bool = True) -> None:
        """Book the schedule-derived cycle cost of one consumed batch.

        Single source of truth for the engine cycle model: the engine's own
        epoch loops call it per batch, and the cluster layer's lock-step
        executor — which evaluates the same batch for many segments in one
        tape run — calls it on each segment's engine, so sharded and
        single-engine runs report identical per-segment counters.
        ``account_tree_bus`` is False on paths where :meth:`TreeBus.merge`
        itself books the bus activity.
        """
        self.account_batches(batch_len, 1, account_tree_bus=account_tree_bus)

    def account_batches(
        self, batch_len: int, count: int, account_tree_bus: bool = True
    ) -> None:
        """Bulk-book ``count`` identical batches of ``batch_len`` tuples.

        Equivalent to ``count`` calls of :meth:`account_batch`; the sharded
        lock-step executor uses it to book a whole epoch's full batches per
        segment in O(1) instead of once per vector step.
        """
        if count < 1:
            return
        self.stats.batches_processed += count
        self.stats.tuples_processed += count * batch_len
        # Timing: the threads run in lock-step, so a batch needs
        # ceil(batch / threads) engine rounds before the merge.
        rounds = math.ceil(batch_len / self.threads)
        merge_cycles = self._merge_cycles_by_batch.get(batch_len)
        if merge_cycles is None:
            merge_cycles = self.tree_bus.merge_cycles(
                min(batch_len, self.threads), self._merge_elements
            )
            self._merge_cycles_by_batch[batch_len] = merge_cycles
        self.stats.update_rule_cycles += count * rounds * self._update_rule_cycles
        self.stats.merge_cycles += count * merge_cycles
        self.stats.post_merge_cycles += count * self._post_merge_cycles
        if account_tree_bus:
            for merge_node in self._merge_nodes:
                self.tree_bus.account_merge(
                    batch_len, merge_node.element_count, repeat=count
                )

    def account_epoch_end(self) -> None:
        """Book the once-per-epoch convergence-check cycles."""
        self.stats.convergence_cycles += self._convergence_cycles

    def predict_epoch_cycles(self, n_tuples: int) -> int:
        """Predict one epoch's engine cycles over ``n_tuples`` tuples.

        Applies the same schedule-derived arithmetic as
        :meth:`account_batches` (full batches of :attr:`batch_size` plus
        one remainder batch, ``ceil(batch / threads)`` rounds each, the
        tree-bus merge per batch) and the once-per-epoch convergence
        check, without mutating :attr:`stats` — this is what ``EXPLAIN``
        prices a training statement with before anything runs.
        """
        if n_tuples <= 0:
            return self._convergence_cycles
        cycles = 0
        full, remainder = divmod(n_tuples, self.batch_size)
        for batch_len, count in ((self.batch_size, full), (remainder, 1)):
            if count < 1 or batch_len < 1:
                continue
            rounds = math.ceil(batch_len / self.threads)
            merge_cycles = self.tree_bus.merge_cycles(
                min(batch_len, self.threads), self._merge_elements
            )
            cycles += count * (
                rounds * self._update_rule_cycles
                + merge_cycles
                + self._post_merge_cycles
            )
        return cycles + self._convergence_cycles

    def _train_one_epoch_tape(
        self,
        batches: Iterable[np.ndarray],
        models: dict[str, np.ndarray],
        bind_batch: BatchBinder,
    ) -> list | None:
        """One epoch on the batched tape; accounting matches the tuple path."""
        env: list | None = None
        tape = self.tape
        for batch in batches:
            env = tape.run(bind_batch(batch), models)
            tape.apply_updates(env, models)
            self.account_batch(len(batch))
        self.account_epoch_end()
        return env

    def _train_one_epoch(
        self,
        batches: Iterable[np.ndarray],
        models: dict[str, np.ndarray],
        bind_tuple: TupleBinder,
    ) -> dict:
        last_env: dict = {}
        for batch in batches:
            last_env = self._process_batch(batch, models, bind_tuple)
            self.account_batch(len(batch), account_tree_bus=False)
        self.account_epoch_end()
        return last_env

    def _process_batch(
        self,
        batch: np.ndarray,
        models: dict[str, np.ndarray],
        bind_tuple: TupleBinder,
    ) -> dict:
        per_thread_envs = []
        for row in batch:
            bindings = dict(bind_tuple(np.asarray(row, dtype=np.float64)))
            for name, value in models.items():
                bindings.setdefault(name, value)
            env = self.evaluator.initial_env(bindings)
            env = self.evaluator.evaluate(env, [Region.UPDATE_RULE])
            per_thread_envs.append(env)

        if self._gather_updates:
            # Row-addressed models (LRMF): apply each thread's update in turn,
            # Hogwild-style, because different tuples touch different rows.
            for env in per_thread_envs:
                env = self.evaluator.evaluate(env, [Region.UPDATE_RULE, Region.POST_MERGE])
                self._apply_updates(env, models)
            return per_thread_envs[-1]

        # Aggregate merge-node values across threads on the tree bus.
        lead_env = per_thread_envs[0]
        for merge_node in self._merge_nodes:
            operand_id = merge_node.inputs[0]
            values = [env[operand_id] for env in per_thread_envs if operand_id in env]
            merged = self.tree_bus.merge(values, merge_node.merge_operator)
            lead_env[merge_node.node_id] = merged
        lead_env = self.evaluator.evaluate(lead_env, [Region.UPDATE_RULE, Region.POST_MERGE])
        self._apply_updates(lead_env, models)
        return lead_env

    # ------------------------------------------------------------------ #
    # model write-back
    # ------------------------------------------------------------------ #
    def _apply_updates(self, env: dict, models: dict[str, np.ndarray]) -> None:
        results = self.evaluator.model_results(env)
        for name, value in results.items():
            if name not in models:
                models[name] = value
                continue
            current = models[name]
            if value.shape == current.shape:
                models[name] = value
                continue
            # Row-addressed update: find the gather node for this model to
            # recover which row the tuple addressed.
            row_index = self._gather_row_index(name, env)
            if row_index is None:
                raise ExecutionEngineError(
                    f"update for model {name!r} has shape {value.shape} but the model "
                    f"is {current.shape} and no gather index was found"
                )
            current = current.copy()
            current[row_index] = value
            models[name] = current

    def _gather_row_index(self, model_name: str, env: dict) -> int | None:
        model_node_ids = self._binding_ids_by_name.get(model_name, ())
        for gather in self._gather_nodes:
            if gather.inputs[0] in model_node_ids and gather.inputs[1] in env:
                return int(round(float(np.asarray(env[gather.inputs[1]]))))
        return None

    def _compute_gather_updates(self) -> bool:
        if not self._gather_nodes:
            return False
        model_dims = {
            name: self.graph.node(var_node_id).dims
            for name, var_node_id, _u in self.graph.update_targets
            if var_node_id >= 0
        }
        for name, _var_node_id, update_node_id in self.graph.update_targets:
            update_dims = self.graph.node(update_node_id).dims
            if name in model_dims and update_dims != model_dims[name]:
                return True
        return False

    def _merge_element_count(self) -> int:
        if not self._merge_nodes:
            return 0
        return max(node.element_count for node in self._merge_nodes)

    def _convergence_reached(self, env: dict) -> bool:
        if self.graph.convergence_node_id is None:
            return False
        env = self.evaluator.evaluate(
            env, [Region.UPDATE_RULE, Region.POST_MERGE, Region.CONVERGENCE]
        )
        return self.evaluator.convergence_reached(env)

    # ------------------------------------------------------------------ #
    # microcode path (schedule validation)
    # ------------------------------------------------------------------ #
    def execute_microcode(
        self,
        variable_values: Mapping[str, np.ndarray | float],
        regions: Iterable[Region] = (Region.UPDATE_RULE,),
        merged_values: Mapping[int, np.ndarray] | None = None,
    ) -> dict[int, np.ndarray]:
        """Execute the compiled engine program on simulated ACs/AUs.

        ``variable_values`` binds DSL variable names to values;
        ``merged_values`` optionally injects merge-node results (needed when
        executing the post-merge region).  Returns the computed value of
        every hDFG node touched by the executed steps, keyed by node id.
        """
        regions = list(regions)
        address_map = self.schedule.address_map
        memory: dict[int, float] = {}
        supported = self.graph.required_operators() | {Operator.ADD}
        alu = ALU(supported)
        clusters = [
            AnalyticCluster(cluster_id=i, alu=alu)
            for i in range(self.schedule.acs_per_thread)
        ]
        # All AUs of the thread share one scratchpad image so that values
        # produced on one AU are visible to consumers scheduled elsewhere.
        for cluster in clusters:
            for au in cluster.aus:
                au.data_memory = memory
                au.memory_words = max(4096, len(address_map) + 1024)

        # Pre-load leaves (variables, constants) and gather staging values.
        env = self.evaluator.initial_env(dict(variable_values))
        env = self.evaluator.evaluate(env, [])
        self._preload_memory(memory, env)
        for gather in self._gather_nodes:
            source = np.asarray(env.get(gather.inputs[0]))
            index_value = env.get(gather.inputs[1])
            if source is None or index_value is None:
                continue
            row = np.atleast_1d(source[int(round(float(index_value)))])
            for i in range(gather.element_count):
                key = ("gather", gather.node_id, i)
                if address_map.known(key):
                    memory[address_map.address_of(key)] = float(row.flat[i])
        if merged_values:
            for node_id, value in merged_values.items():
                flat = np.atleast_1d(np.asarray(value, dtype=np.float64)).ravel()
                for i, v in enumerate(flat):
                    key = node_ref(node_id, i)
                    if address_map.known(key):
                        memory[address_map.address_of(key)] = float(v)

        step_lists = {
            Region.UPDATE_RULE: self.schedule.program.update_rule_steps,
            Region.POST_MERGE: self.schedule.program.post_merge_steps,
            Region.CONVERGENCE: self.schedule.program.convergence_steps,
        }
        for region in regions:
            for step in step_lists[region]:
                for instruction in step.cluster_instructions:
                    cluster = clusters[instruction.cluster_id % len(clusters)]
                    fixed = instruction
                    if instruction.cluster_id >= len(clusters):
                        fixed = type(instruction)(
                            cluster_id=cluster.cluster_id,
                            operation=instruction.operation,
                            au_slots=instruction.au_slots,
                        )
                    cluster.execute_instruction(fixed)

        # Collect node outputs back from the scratchpad.
        results: dict[int, np.ndarray] = {}
        for node in self.graph.nodes():
            if node.is_leaf or node.kind in (NodeKind.UPDATE, NodeKind.MERGE):
                continue
            if node.region not in regions:
                continue
            values = []
            complete = True
            for i in range(node.element_count):
                key = node_ref(node.node_id, i)
                if not address_map.known(key):
                    complete = False
                    break
                address = address_map.address_of(key)
                if address not in memory:
                    complete = False
                    break
                values.append(memory[address])
            if complete:
                results[node.node_id] = np.asarray(values, dtype=np.float64).reshape(
                    node.dims if node.dims else ()
                )
        return results

    def _preload_memory(self, memory: dict[int, float], env: dict) -> None:
        address_map = self.schedule.address_map
        for node in self.graph.nodes():
            if not node.is_leaf or node.node_id not in env:
                continue
            flat = np.atleast_1d(np.asarray(env[node.node_id], dtype=np.float64)).ravel()
            for i, value in enumerate(flat):
                key = node_ref(node.node_id, i)
                if address_map.known(key):
                    memory[address_map.address_of(key)] = float(value)


class _SingleEngineStep(EpochStep):
    """The single-engine strategy for the shared :class:`EpochDriver` loop.

    The state *is* the model dict (the tape / evaluator update it in
    place), there is nothing to merge, and the only pipelining decision is
    whether the first epoch may consume batches straight off a streaming
    :class:`BatchSource` (possible when the epoch order is the storage
    order, i.e. ``shuffle=False``).
    """

    merges = False

    def __init__(
        self,
        engine: ExecutionEngine,
        rows: np.ndarray | None,
        source: BatchSource | None,
        bind_tuple: TupleBinder | None,
        bind_batch: BatchBinder | None,
        use_tape: bool,
        shuffle: bool,
        rng: np.random.Generator | None,
        convergence_check: bool,
    ) -> None:
        self.engine = engine
        self._rows = rows
        self._source = source
        self.bind_tuple = bind_tuple
        self.bind_batch = bind_batch
        self.use_tape = use_tape
        self.shuffle = shuffle
        self.rng = rng
        self.convergence_check = convergence_check

    def _materialized_rows(self) -> np.ndarray:
        if self._rows is None:
            self._rows = self._source.rows()
        return self._rows

    def run_epoch(self, models: dict[str, np.ndarray], epoch_index: int):
        engine = self.engine
        stream = (
            epoch_index == 0
            and self._rows is None
            and self._source is not None
            and not self.shuffle
        )
        if stream:
            batches = self._source.batches(engine.batch_size)
        else:
            epoch_rows = self._materialized_rows()
            if self.shuffle:
                order = np.arange(len(epoch_rows))
                (self.rng or np.random.default_rng(0)).shuffle(order)
                epoch_rows = epoch_rows[order]
            batches = engine.iter_batches(epoch_rows)
        if self.use_tape:
            env = engine._train_one_epoch_tape(batches, models, self.bind_batch)
            reached = self.convergence_check and engine.tape.convergence_reached(env)
        else:
            env = engine._train_one_epoch(batches, models, self.bind_tuple)
            reached = self.convergence_check and engine._convergence_reached(env)
        engine.stats.epochs_completed += 1
        return models, reached
