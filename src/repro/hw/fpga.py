"""Target-FPGA specifications (paper Table 4).

The hardware generator sizes the accelerator from the FPGA's resources:
the number of DSP slices bounds how many Analytic Units can be
instantiated, the BRAM capacity bounds how many page buffers / how much
model and training-data storage fits on chip, and the off-chip bandwidth
bounds how fast the access engine can pull buffer-pool pages.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class FPGASpec:
    """Resource envelope of one FPGA target."""

    name: str
    luts: int
    flip_flops: int
    frequency_mhz: float
    bram_bytes: int
    dsp_slices: int
    #: off-chip (host <-> FPGA) bandwidth in gigabits/second.  128 Gb/s is
    #: the ~16 GB/s of a PCIe gen3 x16 link, the class of interface the
    #: VU9P boards of the paper's testbed use.
    axi_bandwidth_gbps: float = 128.0
    bram_read_width_bytes: int = 8        # per-cycle read width of one BRAM port
    dsps_per_au: int = 5                  # DSP slices consumed by one Analytic Unit
    max_compute_units: int = 1024         # paper: "maximum 1024 compute units"

    def __post_init__(self) -> None:
        if self.frequency_mhz <= 0:
            raise ConfigurationError("FPGA frequency must be positive")
        if self.dsp_slices <= 0 or self.bram_bytes <= 0:
            raise ConfigurationError("FPGA resources must be positive")

    # ------------------------------------------------------------------ #
    # derived quantities
    # ------------------------------------------------------------------ #
    @property
    def frequency_hz(self) -> float:
        return self.frequency_mhz * 1e6

    @property
    def cycle_time_s(self) -> float:
        return 1.0 / self.frequency_hz

    @property
    def axi_bytes_per_second(self) -> float:
        return self.axi_bandwidth_gbps * 1e9 / 8.0

    @property
    def axi_bytes_per_cycle(self) -> float:
        return self.axi_bytes_per_second / self.frequency_hz

    def max_analytic_units(self) -> int:
        """Upper bound on AUs given DSP slices and the compute-unit cap."""
        return min(self.dsp_slices // self.dsps_per_au, self.max_compute_units)

    def with_bandwidth_scale(self, scale: float) -> "FPGASpec":
        """A copy of this spec with the off-chip bandwidth scaled (Figure 14)."""
        if scale <= 0:
            raise ConfigurationError("bandwidth scale must be positive")
        return replace(self, axi_bandwidth_gbps=self.axi_bandwidth_gbps * scale)

    def with_compute_scale(self, scale: float) -> "FPGASpec":
        """A copy with the DSP budget scaled (compute-capability sensitivity)."""
        if scale <= 0:
            raise ConfigurationError("compute scale must be positive")
        return replace(self, dsp_slices=int(self.dsp_slices * scale))


# Xilinx Virtex UltraScale+ VU9P, the paper's evaluation platform (Table 4).
ULTRASCALE_PLUS_VU9P = FPGASpec(
    name="Xilinx Virtex UltraScale+ VU9P",
    luts=1_182_000,
    flip_flops=2_364_000,
    frequency_mhz=150.0,
    bram_bytes=44 * 1024 * 1024,
    dsp_slices=6_840,
)

# Intel Arria 10 (mentioned in §5.2 as a smaller-BRAM alternative); useful for
# sensitivity studies of the hardware generator.
ARRIA_10 = FPGASpec(
    name="Intel Arria 10 GX",
    luts=427_200,
    flip_flops=1_708_800,
    frequency_mhz=150.0,
    bram_bytes=7 * 1024 * 1024,
    dsp_slices=1_518,
)

DEFAULT_FPGA = ULTRASCALE_PLUS_VU9P
