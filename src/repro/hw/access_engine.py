"""Multi-threaded access engine: AXI interface, shifter, page buffers, Striders.

The access engine (paper §5.1, Figure 5) receives uncompressed database
pages over the AXI interface, stores each page in a page buffer, aligns the
data with a shifter, and lets the page's Strider extract, cleanse and emit
the training tuples toward the execution engine.  Multiple page buffers are
processed in parallel — one Strider per buffer — which is where the
"process data at page granularity to amortise the cost of per-tuple
transfer" benefit comes from.

The simulator is functional (it produces the exact float vectors the
execution engine consumes, straight from the binary page images) and keeps
a cycle account:

* AXI transfer cycles — bytes moved divided by the per-cycle off-chip
  bandwidth of the FPGA;
* Strider cycles — per-instruction cycle counts from the Strider simulator,
  where striders working on different pages run concurrently.
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.exceptions import HardwareError
from repro.hw.fpga import FPGASpec
from repro.hw.strider import Strider, StriderResult
from repro.isa.strider_isa import StriderProgram
from repro.obs.telemetry import telemetry
from repro.rdbms.types import Schema
from repro.reliability.faults import fault_point
from repro.reliability.retry import RetryPolicy
from repro.runtime import BatchSource

#: fault-injection site fired once per bulk page-walk batch.
PAGE_WALK_FAULT_SITE = "hw.strider.page_walk"


@dataclass
class AccessEngineConfig:
    """Static configuration chosen by the hardware generator."""

    num_striders: int
    page_size: int
    read_width_bytes: int = 8

    def __post_init__(self) -> None:
        if self.num_striders < 1:
            raise HardwareError("the access engine needs at least one Strider")
        if self.page_size <= 0:
            raise HardwareError("page size must be positive")


@dataclass
class AccessEngineStats:
    """Aggregate counters for one access-engine run."""

    pages_processed: int = 0
    tuples_extracted: int = 0
    bytes_transferred: int = 0
    axi_cycles: int = 0
    strider_cycles_total: int = 0
    strider_cycles_critical: int = 0   # max over parallel striders, summed per batch
    shifter_cycles: int = 0

    def merge_batch(self, batch_results: list[StriderResult], page_bytes: int, axi_bytes_per_cycle: float) -> None:
        if not batch_results:
            return
        self.pages_processed += len(batch_results)
        self.tuples_extracted += sum(r.stats.tuples_emitted for r in batch_results)
        transferred = page_bytes * len(batch_results)
        self.bytes_transferred += transferred
        self.axi_cycles += math.ceil(transferred / max(axi_bytes_per_cycle, 1e-9))
        cycles = [r.stats.cycles for r in batch_results]
        self.strider_cycles_total += sum(cycles)
        self.strider_cycles_critical += max(cycles)
        # one shifter pass per page to align data to the BRAM read width
        self.shifter_cycles += len(batch_results)


class PayloadDecoder:
    """Converts cleansed tuple payloads into float vectors.

    DAnA's compiler emits Strider instructions that "transform user data
    into a floating point format"; the decoder performs that conversion,
    driven by the table schema, so the execution engine always sees
    float feature vectors regardless of the on-page column types.
    """

    #: struct format character → little-endian NumPy dtype string
    _NP_DTYPES = {"f": "<f4", "d": "<f8", "h": "<i2", "i": "<i4", "q": "<i8"}

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self._struct = struct.Struct(
            "<" + "".join(col.ctype.struct_code for col in schema.columns)
        )
        self.payload_bytes = schema.row_width
        codes = [self._NP_DTYPES[col.ctype.struct_code] for col in schema.columns]
        # Homogeneous schemas (the common dense-training layout) decode as
        # one flat reinterpret; mixed schemas go through a record dtype.
        self._flat_dtype = np.dtype(codes[0]) if len(set(codes)) == 1 else None
        self._record_dtype = np.dtype(
            [(f"c{i}", code) for i, code in enumerate(codes)]
        )

    def decode(self, payload: bytes) -> np.ndarray:
        if len(payload) != self.payload_bytes:
            raise HardwareError(
                f"payload is {len(payload)} bytes but the schema expects "
                f"{self.payload_bytes}"
            )
        return np.asarray(self._struct.unpack(payload), dtype=np.float64)

    def decode_many(self, payloads: Iterable[bytes]) -> np.ndarray:
        """Decode a whole FIFO of payloads with one buffer reinterpret.

        Instead of unpacking tuple-at-a-time, the payloads are concatenated
        once and reinterpreted with ``np.frombuffer`` — the software analogue
        of the paper's point that data should move toward the compute engine
        at page granularity, not tuple granularity.
        """
        payloads = payloads if isinstance(payloads, list) else list(payloads)
        if not payloads:
            return np.empty((0, len(self.schema)))
        lengths = np.fromiter(map(len, payloads), dtype=np.int64, count=len(payloads))
        if (lengths != self.payload_bytes).any():
            bad = int(lengths[lengths != self.payload_bytes][0])
            raise HardwareError(
                f"payload is {bad} bytes but the schema expects "
                f"{self.payload_bytes}"
            )
        buffer = b"".join(payloads)
        n_rows, n_cols = len(payloads), len(self.schema)
        if self._flat_dtype is not None:
            flat = np.frombuffer(buffer, dtype=self._flat_dtype)
            return flat.reshape(n_rows, n_cols).astype(np.float64)
        records = np.frombuffer(buffer, dtype=self._record_dtype)
        out = np.empty((n_rows, n_cols), dtype=np.float64)
        for i, name in enumerate(records.dtype.names):
            out[:, i] = records[name]
        return out


class AccessEngine:
    """Streams buffer-pool pages through page buffers and Striders."""

    def __init__(
        self,
        config: AccessEngineConfig,
        program: StriderProgram,
        schema: Schema,
        fpga: FPGASpec,
    ) -> None:
        self.config = config
        self.program = program
        self.schema = schema
        self.fpga = fpga
        self.decoder = PayloadDecoder(schema)
        self._striders = [
            Strider(program, read_width_bytes=config.read_width_bytes)
            for _ in range(config.num_striders)
        ]
        self.stats = AccessEngineStats()
        #: hot path uses the bulk page walk (identical payloads and stats);
        #: set to False to force the instruction interpreter (the oracle).
        self.use_bulk_walk = True

    # ------------------------------------------------------------------ #
    # page streaming
    # ------------------------------------------------------------------ #
    def process_pages(self, page_images: Iterable[bytes]) -> Iterator[np.ndarray]:
        """Process pages in batches of ``num_striders``; yield per-page tuples.

        Each yielded array has shape ``(tuples_on_page, n_columns)``.
        """
        batch: list[bytes] = []
        for image in page_images:
            batch.append(image)
            if len(batch) == self.config.num_striders:
                yield from self._process_batch(batch)
                batch = []
        if batch:
            yield from self._process_batch(batch)

    def extract_table(self, page_images: Iterable[bytes]) -> np.ndarray:
        """Materialise every tuple of the supplied pages as one array."""
        chunks = list(self.process_pages(page_images))
        if not chunks:
            return np.empty((0, len(self.schema)))
        return np.vstack(chunks)

    def stream_table(
        self,
        page_images: Iterable[bytes],
        queue_depth: int = 2,
        retry: RetryPolicy | None = None,
    ) -> BatchSource:
        """Stream the page walk through a bounded double buffer.

        The returned :class:`~repro.runtime.BatchSource` runs
        :meth:`process_pages` on a producer thread, so Strider extraction
        overlaps the execution engine's compute exactly like the paper's
        page buffers feed the engine while later pages are still being
        cleansed.  Payloads and cycle counters are identical to
        :meth:`extract_table` (read :attr:`stats` only after the stream is
        drained — the producer thread owns them until then).

        With a ``retry`` policy the source is **restartable**: a transient
        producer fault resets :attr:`stats` and re-walks the (materialised)
        page list from the top, replaying already-delivered chunks from the
        consumer cache — so the delivered tuples and the final counters are
        bit-identical to a fault-free run.
        """
        if retry is None:
            return BatchSource(
                self.process_pages(page_images),
                n_columns=len(self.schema),
                queue_depth=queue_depth,
            )
        images = list(page_images)

        def fresh() -> Iterator[np.ndarray]:
            # Restart hook: the fresh walk re-books every page, so the
            # counters restart from zero to stay bit-identical.
            self.stats = AccessEngineStats()
            return self.process_pages(images)

        return BatchSource(
            self.process_pages(images),
            n_columns=len(self.schema),
            queue_depth=queue_depth,
            chunk_factory=fresh,
            retry=retry,
        )

    def _process_batch(self, batch: list[bytes]) -> list[np.ndarray]:
        fault_point(PAGE_WALK_FAULT_SITE)
        obs = telemetry()
        span = (
            obs.span("hw.strider.page_walk", pages=len(batch))
            if obs is not None
            else None
        )
        results: list[StriderResult] = []
        for image, strider in zip(batch, self._striders):
            if len(image) != self.config.page_size:
                raise HardwareError(
                    f"page image is {len(image)} bytes, expected {self.config.page_size}"
                )
            if self.use_bulk_walk:
                results.append(strider.process_page_bulk(image))
            else:
                results.append(strider.process_page(image))
        self.stats.merge_batch(
            results, self.config.page_size, self.fpga.axi_bytes_per_cycle
        )
        if span is not None:
            obs.finish(span)
            span = obs.span("hw.decode", pages=len(results))
        decoded = [self.decoder.decode_many(result.payloads) for result in results]
        if span is not None:
            obs.finish(span, tuples=sum(len(chunk) for chunk in decoded))
        return decoded

    # ------------------------------------------------------------------ #
    # analytic cycle model (used when pages are not materially streamed)
    # ------------------------------------------------------------------ #
    def estimate_cycles_per_page(self, tuples_per_page: int) -> dict[str, float]:
        """Estimate per-page access-engine cycles without executing a page.

        The estimate mirrors the measured behaviour of :class:`Strider`:
        header processing plus a per-tuple loop whose read/cleanse cost is
        proportional to the tuple size in BRAM words.
        """
        tuple_bytes = self.schema.row_width + 8  # payload + tuple header
        words = max(1, math.ceil(tuple_bytes / self.config.read_width_bytes))
        payload_words = max(1, math.ceil(self.schema.row_width / self.config.read_width_bytes))
        header_cycles = 6
        per_tuple_cycles = 4 + words + payload_words  # pointer read/extracts + tuple read + cleanse
        strider_cycles = header_cycles + per_tuple_cycles * max(1, tuples_per_page)
        axi_cycles = math.ceil(
            self.config.page_size / max(self.fpga.axi_bytes_per_cycle, 1e-9)
        )
        return {
            "strider_cycles": float(strider_cycles),
            "axi_cycles": float(axi_cycles),
            "per_tuple_cycles": float(per_tuple_cycles),
        }

    def estimate_partition_cycles(
        self, page_tuple_counts: Sequence[int]
    ) -> dict[str, int]:
        """Predict one partition's extraction stage without walking a page.

        Mirrors the batched accounting of
        :meth:`AccessEngineStats.merge_batch`: pages walk in waves of
        ``num_striders`` parallel striders, each wave's critical strider
        cost is its slowest page, and the AXI transfer is booked per wave
        over the wave's full byte volume.  Returns the same stage split
        the measured counters expose (``access_cycles`` is
        ``strider_cycles_critical + axi_cycles``, the definition segment
        reports use).
        """
        striders = max(1, self.config.num_striders)
        if not len(page_tuple_counts):
            return {
                "strider_cycles_critical": 0,
                "axi_cycles": 0,
                "access_cycles": 0,
            }
        # Vectorized over pages: the per-page estimate is an affine
        # function of the tuple count, so the whole partition reduces to
        # one reshape + max per wave (EXPLAIN prices plans over partition
        # tuple counts, so this runs per statement, not per run).
        base = self.estimate_cycles_per_page(1)
        per_tuple = int(base["per_tuple_cycles"])
        header_cycles = int(base["strider_cycles"]) - per_tuple
        counts = np.maximum(np.asarray(page_tuple_counts, dtype=np.int64), 1)
        pad = (-len(counts)) % striders
        padded = np.pad(counts, (0, pad), constant_values=0)
        waves = padded.reshape(-1, striders)
        per_page = header_cycles + per_tuple * waves
        # padding rows contribute 0 tuples but still carry header cycles;
        # mask them out of the wave maximum entirely.
        per_page[waves == 0] = 0
        strider_critical = int(per_page.max(axis=1).sum())
        wave_sizes = (waves > 0).sum(axis=1)
        axi_per_wave = np.ceil(
            self.config.page_size
            * wave_sizes
            / max(self.fpga.axi_bytes_per_cycle, 1e-9)
        )
        axi_cycles = int(axi_per_wave.sum())
        return {
            "strider_cycles_critical": strider_critical,
            "axi_cycles": axi_cycles,
            "access_cycles": strider_critical + axi_cycles,
        }
