"""Analytic Cluster (AC): eight AUs running in selective-SIMD lockstep.

The AC (paper Figure 7a) is the control hub of its AUs: it decodes one
cluster-level instruction per step, sends control signals to the AUs whose
enable bit is set, and advances its program counter once all designated AUs
complete.  Each AU is connected to its two neighbours and to a shared
line-topology bus owned by the cluster.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ExecutionEngineError
from repro.hw.alu import ALU
from repro.hw.analytic_unit import AnalyticUnit
from repro.isa.engine_isa import AUS_PER_CLUSTER, ACInstruction, DestKind


@dataclass
class ACStats:
    instructions_executed: int = 0
    cycles: int = 0
    operations_executed: int = 0
    bus_transfers: int = 0


class AnalyticCluster:
    """A collection of AUs sharing a controller, program counter and bus."""

    def __init__(self, cluster_id: int, alu: ALU | None = None, aus_per_cluster: int = AUS_PER_CLUSTER) -> None:
        self.cluster_id = cluster_id
        self.aus = [AnalyticUnit(i, alu=alu) for i in range(aus_per_cluster)]
        # neighbour connections (line topology with wrap-around at the ends)
        for i, au in enumerate(self.aus):
            au.left = self.aus[i - 1] if i > 0 else None
            au.right = self.aus[i + 1] if i < len(self.aus) - 1 else None
        self.program_counter = 0
        self.stats = ACStats()

    def au(self, index: int) -> AnalyticUnit:
        if not 0 <= index < len(self.aus):
            raise ExecutionEngineError(
                f"AC{self.cluster_id} has no AU {index} (cluster width is {len(self.aus)})"
            )
        return self.aus[index]

    def execute_instruction(self, instruction: ACInstruction) -> dict[int, float]:
        """Execute one selective-SIMD instruction; returns per-AU results."""
        if instruction.cluster_id != self.cluster_id:
            raise ExecutionEngineError(
                f"instruction for AC{instruction.cluster_id} issued to AC{self.cluster_id}"
            )
        results: dict[int, float] = {}
        bus_values: list[float] = []
        for slot in instruction.au_slots:
            au = self.au(slot.au_index)
            value = au.execute(instruction.operation, slot)
            results[slot.au_index] = value
            if slot.dest_kind is DestKind.BUS:
                bus_values.append(value)
        # Values destined for the bus become visible to every AU's FIFO.
        if bus_values:
            self.stats.bus_transfers += len(bus_values)
            for au in self.aus:
                au.bus_fifo.extend(bus_values)
        self.program_counter += 1
        self.stats.instructions_executed += 1
        self.stats.cycles += instruction.latency
        self.stats.operations_executed += instruction.enabled_au_count
        return results

    def reset(self) -> None:
        self.program_counter = 0
        for au in self.aus:
            au.data_memory.clear()
            au.bus_fifo.clear()
            au.register = 0.0
