"""Operation registry for the DAnA DSL (paper Table 1).

Three categories of mathematical operations are supported:

* **primary** — ``+ - * / > <`` applied element-by-element (with implicit
  replication of the lower-dimensional operand);
* **non-linear** — ``sigmoid``, ``gaussian``, ``sqrt`` applied element-wise
  to a single operand;
* **group** — ``sigma`` (summation), ``pi`` (product), ``norm`` (Euclidean
  magnitude) which reduce across a grouping axis.

Every operator carries the information the back end needs: its category,
how the ALU implements it, and how the scheduler should decompose it into
atomic sub-nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.exceptions import OperationError


class OpCategory(Enum):
    PRIMARY = "primary"
    NONLINEAR = "nonlinear"
    GROUP = "group"


class Operator(Enum):
    """All operators allowed by the DSL."""

    # primary
    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"
    GT = ">"
    LT = "<"
    # non-linear
    SIGMOID = "sigmoid"
    GAUSSIAN = "gaussian"
    SQRT = "sqrt"
    # group
    SIGMA = "sigma"
    PI = "pi"
    NORM = "norm"

    @property
    def category(self) -> OpCategory:
        return _CATEGORIES[self]

    @property
    def is_primary(self) -> bool:
        return self.category is OpCategory.PRIMARY

    @property
    def is_nonlinear(self) -> bool:
        return self.category is OpCategory.NONLINEAR

    @property
    def is_group(self) -> bool:
        return self.category is OpCategory.GROUP

    @property
    def commutative(self) -> bool:
        return self in (Operator.ADD, Operator.MUL)


_CATEGORIES = {
    Operator.ADD: OpCategory.PRIMARY,
    Operator.SUB: OpCategory.PRIMARY,
    Operator.MUL: OpCategory.PRIMARY,
    Operator.DIV: OpCategory.PRIMARY,
    Operator.GT: OpCategory.PRIMARY,
    Operator.LT: OpCategory.PRIMARY,
    Operator.SIGMOID: OpCategory.NONLINEAR,
    Operator.GAUSSIAN: OpCategory.NONLINEAR,
    Operator.SQRT: OpCategory.NONLINEAR,
    Operator.SIGMA: OpCategory.GROUP,
    Operator.PI: OpCategory.GROUP,
    Operator.NORM: OpCategory.GROUP,
}

# The ALU latency (in cycles) of each operation.  Primary operations are
# single-cycle; non-linear operations use a multi-cycle pipelined unit, the
# values follow the latency ratios used by TABLA-style accelerators.
ALU_LATENCY = {
    Operator.ADD: 1,
    Operator.SUB: 1,
    Operator.MUL: 1,
    Operator.DIV: 4,
    Operator.GT: 1,
    Operator.LT: 1,
    Operator.SIGMOID: 4,
    Operator.GAUSSIAN: 4,
    Operator.SQRT: 4,
    # group operations are decomposed into primary sub-nodes by the compiler,
    # so they carry no latency of their own.
    Operator.SIGMA: 0,
    Operator.PI: 0,
    Operator.NORM: 0,
}

# The primary operator each group operation applies while reducing.
GROUP_REDUCE_OP = {
    Operator.SIGMA: Operator.ADD,
    Operator.PI: Operator.MUL,
    Operator.NORM: Operator.ADD,  # norm reduces the squares with ADD, then SQRT
}


@dataclass(frozen=True)
class MergeSpec:
    """Description of a ``merge(x, coefficient, "op")`` call.

    ``coefficient`` is the maximum number of update-rule threads whose
    partial results are combined with ``operator``.
    """

    operator: Operator
    coefficient: int

    def __post_init__(self) -> None:
        if self.coefficient < 1:
            raise OperationError("merge coefficient must be >= 1")
        if not self.operator.is_primary:
            raise OperationError(
                f"merge operator must be a primary operation, got {self.operator.value!r}"
            )


def parse_merge_operator(symbol: str) -> Operator:
    """Map the string form used in ``merge(x, n, "+")`` to an operator."""
    for op in (Operator.ADD, Operator.SUB, Operator.MUL, Operator.DIV):
        if op.value == symbol:
            return op
    raise OperationError(f"unsupported merge operator {symbol!r}")
