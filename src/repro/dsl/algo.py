"""The ``algo`` component: glues the update rule, merge and convergence.

An :class:`Algo` links together the three functions of a DAnA UDF
(paper §4.1):

1. the **update rule** — how one training tuple updates the model,
   terminated by :meth:`Algo.setModel`;
2. the **merge function** — how partial results from parallel update-rule
   threads are combined (:meth:`Algo.merge`);
3. the **terminator** — either a fixed number of epochs
   (:meth:`Algo.setEpochs`) or a convergence condition
   (:meth:`Algo.setConvergence`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.exceptions import AlgoError
from repro.dsl.expressions import Expression, MergeExpression
from repro.dsl.operations import MergeSpec, parse_merge_operator
from repro.dsl.variables import DanaVariable, VariableKind


@dataclass
class ConvergenceSpec:
    """Termination behaviour of an algorithm."""

    max_epochs: int | None = None
    condition: Expression | None = None

    @property
    def epoch_bound(self) -> int:
        """Number of epochs used by the performance model and simulator."""
        return self.max_epochs if self.max_epochs is not None else 1


@dataclass
class Algo:
    """One instance of a learning algorithm (``dana.algo``)."""

    model_var: DanaVariable
    input_vars: tuple[DanaVariable, ...]
    output_vars: tuple[DanaVariable, ...]
    name: str = "algo"
    model_updates: list[tuple[DanaVariable, Expression]] = field(default_factory=list)
    merges: list[MergeExpression] = field(default_factory=list)
    convergence: ConvergenceSpec = field(default_factory=ConvergenceSpec)
    extra_models: tuple[DanaVariable, ...] = ()

    def __post_init__(self) -> None:
        if self.model_var.kind is not VariableKind.MODEL:
            raise AlgoError("the first argument of dana.algo must be a model variable")
        for var in self.input_vars:
            if var.kind not in (VariableKind.INPUT,):
                raise AlgoError(f"{var.name} is not an input variable")
        for var in self.output_vars:
            if var.kind is not VariableKind.OUTPUT:
                raise AlgoError(f"{var.name} is not an output variable")

    # ------------------------------------------------------------------ #
    # built-in special functions (paper Table 1)
    # ------------------------------------------------------------------ #
    def merge(
        self, x: Expression, coefficient: int | DanaVariable, operation: str
    ) -> MergeExpression:
        """Specify the merge operation and the number of merge instances.

        ``coefficient`` may be an integer or a ``dana.meta`` constant (as in
        the paper's example where ``merge_coef = dana.meta(8)``).
        """
        if isinstance(coefficient, DanaVariable):
            if coefficient.kind is not VariableKind.META or coefficient.value is None:
                raise AlgoError("merge coefficient must be a meta constant or an int")
            coeff_value = int(coefficient.value)
        else:
            coeff_value = int(coefficient)
        spec = MergeSpec(operator=parse_merge_operator(operation), coefficient=coeff_value)
        merged = MergeExpression(x, spec)
        self.merges.append(merged)
        return merged

    def setEpochs(self, epochs: int) -> None:  # noqa: N802 - paper API spelling
        """Set the maximum number of epochs (1 epoch = one full data pass)."""
        if epochs < 1:
            raise AlgoError("the number of epochs must be at least 1")
        self.convergence.max_epochs = int(epochs)

    def setConvergence(self, condition: Expression) -> None:  # noqa: N802
        """Frame termination on a boolean DSL expression."""
        if not isinstance(condition, Expression):
            raise AlgoError("setConvergence expects a DSL expression")
        self.convergence.condition = condition

    def setModel(self, updated: Expression, var: DanaVariable | None = None) -> None:  # noqa: N802
        """Link the updated model expression to this algo component.

        The optional ``var`` argument supports algorithms with more than one
        model variable (e.g. the two factor matrices of low-rank matrix
        factorization): each call binds one updated expression to one model
        variable.  Calling ``setModel`` again for the same variable replaces
        the previous binding.
        """
        if not isinstance(updated, Expression):
            raise AlgoError("setModel expects a DSL expression")
        target = var if var is not None else self.model_var
        if target.kind is not VariableKind.MODEL:
            raise AlgoError(f"{target.name} is not a model variable")
        self.model_updates = [(v, e) for v, e in self.model_updates if v is not target]
        self.model_updates.append((target, updated))

    @property
    def updated_model(self) -> Expression | None:
        """The updated expression bound to the primary model variable."""
        for var, expr in self.model_updates:
            if var is self.model_var:
                return expr
        return self.model_updates[0][1] if self.model_updates else None

    # ------------------------------------------------------------------ #
    # inspection helpers used by the translator
    # ------------------------------------------------------------------ #
    @property
    def merge_coefficient(self) -> int:
        """Maximum number of parallel update-rule threads requested."""
        if not self.merges:
            return 1
        return max(m.spec.coefficient for m in self.merges)

    def validate(self) -> None:
        """Check that the component is complete enough to be translated."""
        if not self.model_updates:
            raise AlgoError(
                f"algo {self.name!r} has no setModel() call; the update rule is incomplete"
            )
        if self.convergence.max_epochs is None and self.convergence.condition is None:
            raise AlgoError(
                f"algo {self.name!r} has no terminator; call setEpochs() or setConvergence()"
            )


def algo(
    model_var: DanaVariable,
    inputs: DanaVariable | Sequence[DanaVariable],
    outputs: DanaVariable | Sequence[DanaVariable],
    name: str = "algo",
    extra_models: Sequence[DanaVariable] = (),
) -> Algo:
    """Create an algorithm component (``dana.algo(mo, in, out)``)."""
    input_vars = (inputs,) if isinstance(inputs, DanaVariable) else tuple(inputs)
    output_vars = (outputs,) if isinstance(outputs, DanaVariable) else tuple(outputs)
    return Algo(
        model_var=model_var,
        input_vars=input_vars,
        output_vars=output_vars,
        name=name,
        extra_models=tuple(extra_models),
    )
