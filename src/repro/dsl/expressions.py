"""Expression tree built by the Python-embedded DSL.

Every value manipulated inside a DAnA UDF is an :class:`Expression`.
Declared variables (``dana.model``, ``dana.input`` ...) are leaf
expressions; applying operators produces interior nodes.  The tree is a DAG
— the same sub-expression object may feed several consumers — and is later
converted into the hierarchical DataFlow Graph by the translator.

Dimensions are *not* checked here: following the paper, dimensionality
inference is performed by the translator (§4.4), which walks the tree once
the whole UDF is known.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Union

from repro.exceptions import OperationError
from repro.dsl.operations import MergeSpec, Operator

Number = Union[int, float]

_id_counter = itertools.count()


def _next_id() -> int:
    return next(_id_counter)


class Expression:
    """Base class for every DSL expression node."""

    def __init__(self, name: str | None = None) -> None:
        self.expr_id = _next_id()
        self.name = name or f"expr_{self.expr_id}"

    # ------------------------------------------------------------------ #
    # operator overloading (primary operations)
    # ------------------------------------------------------------------ #
    def _binary(self, other: "Expression | Number", op: Operator, reflected: bool = False):
        other_expr = wrap(other)
        left, right = (other_expr, self) if reflected else (self, other_expr)
        return BinaryExpression(op, left, right)

    def __add__(self, other):
        return self._binary(other, Operator.ADD)

    def __radd__(self, other):
        return self._binary(other, Operator.ADD, reflected=True)

    def __sub__(self, other):
        return self._binary(other, Operator.SUB)

    def __rsub__(self, other):
        return self._binary(other, Operator.SUB, reflected=True)

    def __mul__(self, other):
        return self._binary(other, Operator.MUL)

    def __rmul__(self, other):
        return self._binary(other, Operator.MUL, reflected=True)

    def __truediv__(self, other):
        return self._binary(other, Operator.DIV)

    def __rtruediv__(self, other):
        return self._binary(other, Operator.DIV, reflected=True)

    def __gt__(self, other):
        return self._binary(other, Operator.GT)

    def __lt__(self, other):
        return self._binary(other, Operator.LT)

    def __neg__(self):
        return self._binary(self, Operator.SUB, reflected=True)._replace_left_zero()

    # ------------------------------------------------------------------ #
    # structure
    # ------------------------------------------------------------------ #
    @property
    def children(self) -> tuple["Expression", ...]:
        return ()

    def walk(self) -> Iterable["Expression"]:
        """Post-order traversal of the expression DAG (deduplicated)."""
        seen: set[int] = set()

        def _walk(node: "Expression"):
            if node.expr_id in seen:
                return
            seen.add(node.expr_id)
            for child in node.children:
                yield from _walk(child)
            yield node

        yield from _walk(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name})"

    # helper used by __neg__
    def _replace_left_zero(self):  # pragma: no cover - exercised via __neg__
        return self


class ConstantExpression(Expression):
    """A literal numeric constant appearing in the UDF."""

    def __init__(self, value: Number) -> None:
        super().__init__(name=f"const_{value}")
        self.value = float(value)


def wrap(value: "Expression | Number") -> Expression:
    """Coerce Python numbers into constant expressions."""
    if isinstance(value, Expression):
        return value
    if isinstance(value, (int, float)):
        return ConstantExpression(value)
    raise OperationError(f"cannot use {type(value).__name__} in a DSL expression")


class BinaryExpression(Expression):
    """A primary operation applied to two operands."""

    def __init__(self, op: Operator, left: Expression, right: Expression) -> None:
        if not op.is_primary:
            raise OperationError(f"{op.value!r} is not a primary operation")
        super().__init__()
        self.op = op
        self.left = left
        self.right = right

    @property
    def children(self) -> tuple[Expression, ...]:
        return (self.left, self.right)

    def _replace_left_zero(self):
        # Used to implement unary negation as ``0 - x``.
        self.left = ConstantExpression(0.0)
        return self


class NonlinearExpression(Expression):
    """A non-linear operation (sigmoid, gaussian, sqrt) on one operand."""

    def __init__(self, op: Operator, operand: Expression) -> None:
        if not op.is_nonlinear:
            raise OperationError(f"{op.value!r} is not a non-linear operation")
        super().__init__()
        self.op = op
        self.operand = operand

    @property
    def children(self) -> tuple[Expression, ...]:
        return (self.operand,)


class GroupExpression(Expression):
    """A group operation (sigma, pi, norm) reducing across an axis.

    ``axis`` is the 1-based grouping axis of the *operands*, expressed as a
    constant exactly as in the paper ("Group operations require the input
    operands and the grouping axis which is expressed as a constant").  When
    the operand is a primary operation over two differently-shaped inputs,
    the reduction contracts the shared grouping axis and outer-combines the
    remaining axes (this is what makes ``sigma(mo * in, 2)`` with ``mo`` of
    ``[5][10]`` and ``in`` of ``[2][10]`` produce a ``[5][2]`` output).
    """

    def __init__(self, op: Operator, operand: Expression, axis: int) -> None:
        if not op.is_group:
            raise OperationError(f"{op.value!r} is not a group operation")
        if axis < 1:
            raise OperationError("group axis is a 1-based constant and must be >= 1")
        super().__init__()
        self.op = op
        self.operand = operand
        self.axis = axis

    @property
    def children(self) -> tuple[Expression, ...]:
        return (self.operand,)


class GatherExpression(Expression):
    """Select one row of a multi-dimensional model variable.

    This is a reproduction extension needed to express Low-Rank Matrix
    Factorization, where each training tuple addresses one row of each
    factor matrix.  The paper's DSL does not spell out its LRMF program;
    the gather keeps the "no dynamic variables" rule because the index comes
    from the training tuple, which the Striders deliver alongside the
    features.
    """

    def __init__(self, source: Expression, index: Expression) -> None:
        super().__init__()
        self.source = source
        self.index = index

    @property
    def children(self) -> tuple[Expression, ...]:
        return (self.source, self.index)


class MergeExpression(Expression):
    """Marks the merge boundary between parallel update-rule threads."""

    def __init__(self, operand: Expression, spec: MergeSpec) -> None:
        super().__init__()
        self.operand = operand
        self.spec = spec

    @property
    def children(self) -> tuple[Expression, ...]:
        return (self.operand,)


# ---------------------------------------------------------------------- #
# functional constructors (the DSL's non-linear / group front end)
# ---------------------------------------------------------------------- #
def sigmoid(x: Expression | Number) -> NonlinearExpression:
    """Element-wise logistic sigmoid."""
    return NonlinearExpression(Operator.SIGMOID, wrap(x))


def gaussian(x: Expression | Number) -> NonlinearExpression:
    """Element-wise Gaussian kernel ``exp(-x^2)``."""
    return NonlinearExpression(Operator.GAUSSIAN, wrap(x))


def sqrt(x: Expression | Number) -> NonlinearExpression:
    """Element-wise square root."""
    return NonlinearExpression(Operator.SQRT, wrap(x))


def sigma(x: Expression, axis: int) -> GroupExpression:
    """Summation across the grouping ``axis`` (1-based constant)."""
    return GroupExpression(Operator.SIGMA, wrap(x), axis)


def pi(x: Expression, axis: int) -> GroupExpression:
    """Product across the grouping ``axis`` (1-based constant)."""
    return GroupExpression(Operator.PI, wrap(x), axis)


def norm(x: Expression, axis: int) -> GroupExpression:
    """Euclidean norm across the grouping ``axis`` (1-based constant)."""
    return GroupExpression(Operator.NORM, wrap(x), axis)


def gather(source: Expression, index: Expression) -> GatherExpression:
    """Select the row of ``source`` addressed by the tuple value ``index``."""
    return GatherExpression(wrap(source), wrap(index))
