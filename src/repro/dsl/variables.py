"""Data declarations of the DAnA DSL (paper Table 1).

The DSL distinguishes five kinds of variables:

* ``model``  — the machine-learning model being trained,
* ``input``  — one training-tuple input (feature vector),
* ``output`` — one training-tuple output (label),
* ``meta``   — constants fixed for the whole execution (learning rate,
  regularisation, merge coefficient, ...), shipped to the FPGA before the
  algorithm starts,
* ``inter``  — untyped intermediate values, labelled automatically by the
  back end.

A declared variable is a leaf :class:`~repro.dsl.expressions.Expression`
carrying its kind and dimensions.  Dimensions may be given as a list/tuple
(``dana.model([5, 2])``); omitting them declares a scalar.
"""

from __future__ import annotations

from enum import Enum
from typing import Sequence

from repro.exceptions import DeclarationError
from repro.dsl.expressions import Expression


class VariableKind(Enum):
    MODEL = "model"
    INPUT = "input"
    OUTPUT = "output"
    META = "meta"
    INTER = "inter"


def _normalize_dims(dims: Sequence[int] | int | None) -> tuple[int, ...]:
    """Normalise the user-supplied dimensions into a tuple of ints."""
    if dims is None:
        return ()
    if isinstance(dims, int):
        return (dims,)
    out = []
    for d in dims:
        if not isinstance(d, int) or d <= 0:
            raise DeclarationError(f"dimensions must be positive integers, got {d!r}")
        out.append(d)
    return tuple(out)


class DanaVariable(Expression):
    """A declared DSL variable (leaf of the expression tree)."""

    def __init__(
        self,
        kind: VariableKind,
        dims: Sequence[int] | int | None = None,
        name: str | None = None,
        value: float | None = None,
    ) -> None:
        self.kind = kind
        self.dims = _normalize_dims(dims)
        self.value = value
        super().__init__(name=name or f"{kind.value}_{id(self) & 0xFFFF:x}")
        if kind is VariableKind.META and value is None:
            raise DeclarationError("meta variables must be declared with a constant value")
        if kind is not VariableKind.META and value is not None:
            raise DeclarationError(f"{kind.value} variables cannot carry a constant value")

    @property
    def is_scalar(self) -> bool:
        return len(self.dims) == 0

    @property
    def element_count(self) -> int:
        count = 1
        for d in self.dims:
            count *= d
        return count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        dims = list(self.dims) if self.dims else "scalar"
        return f"DanaVariable({self.kind.value}, dims={dims}, name={self.name!r})"


def model(dims: Sequence[int] | int | None = None, name: str | None = None) -> DanaVariable:
    """Declare a machine-learning model variable (``dana.model``)."""
    return DanaVariable(VariableKind.MODEL, dims, name=name)


def input(dims: Sequence[int] | int | None = None, name: str | None = None) -> DanaVariable:  # noqa: A001 - mirrors dana.input
    """Declare a training-tuple input variable (``dana.input``)."""
    return DanaVariable(VariableKind.INPUT, dims, name=name)


def output(dims: Sequence[int] | int | None = None, name: str | None = None) -> DanaVariable:
    """Declare a training-tuple output (label) variable (``dana.output``)."""
    return DanaVariable(VariableKind.OUTPUT, dims, name=name)


def meta(value: float, name: str | None = None) -> DanaVariable:
    """Declare a meta constant (``dana.meta``), fixed for the whole run."""
    if not isinstance(value, (int, float)):
        raise DeclarationError("meta variables must be numeric constants")
    return DanaVariable(VariableKind.META, None, name=name, value=float(value))


def inter(dims: Sequence[int] | int | None = None, name: str | None = None) -> DanaVariable:
    """Declare an intermediate variable explicitly (``dana.inter``)."""
    return DanaVariable(VariableKind.INTER, dims, name=name)
