"""Python-embedded DSL for expressing advanced-analytics UDFs.

The package can be used exactly like the ``dana`` package in the paper::

    from repro import dana

    mo = dana.model([10])
    x = dana.input([10])
    y = dana.output()
    lr = dana.meta(0.3)

    linearR = dana.algo(mo, x, y)
    s = dana.sigma(mo * x, 1)
    grad = (s - y) * x
    linearR.setModel(mo - lr * grad)
    linearR.setEpochs(10)
"""

from repro.dsl.algo import Algo, ConvergenceSpec, algo
from repro.dsl.expressions import (
    BinaryExpression,
    ConstantExpression,
    Expression,
    GatherExpression,
    GroupExpression,
    MergeExpression,
    NonlinearExpression,
    gather,
    gaussian,
    norm,
    pi,
    sigma,
    sigmoid,
    sqrt,
    wrap,
)
from repro.dsl.operations import (
    ALU_LATENCY,
    GROUP_REDUCE_OP,
    MergeSpec,
    OpCategory,
    Operator,
    parse_merge_operator,
)
from repro.dsl.variables import DanaVariable, VariableKind, inter, meta, model, output
from repro.dsl.variables import input as input  # noqa: PLC0414 - mirrors dana.input

__all__ = [
    "Algo",
    "ALU_LATENCY",
    "BinaryExpression",
    "ConstantExpression",
    "ConvergenceSpec",
    "DanaVariable",
    "Expression",
    "GatherExpression",
    "GROUP_REDUCE_OP",
    "GroupExpression",
    "MergeExpression",
    "MergeSpec",
    "NonlinearExpression",
    "OpCategory",
    "Operator",
    "VariableKind",
    "algo",
    "gather",
    "gaussian",
    "input",
    "inter",
    "meta",
    "model",
    "norm",
    "output",
    "parse_merge_operator",
    "pi",
    "sigma",
    "sigmoid",
    "sqrt",
    "wrap",
]
