"""Plain-text table formatting for experiment results."""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(rows: Sequence[dict], columns: Sequence[str] | None = None, title: str = "") -> str:
    """Render a list of dictionaries as an aligned plain-text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    widths = {c: len(str(c)) for c in columns}
    rendered_rows = []
    for row in rows:
        rendered = {c: _render(row.get(c)) for c in columns}
        rendered_rows.append(rendered)
        for c in columns:
            widths[c] = max(widths[c], len(rendered[c]))
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(str(c).ljust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[c] for c in columns))
    for rendered in rendered_rows:
        lines.append(" | ".join(rendered[c].ljust(widths[c]) for c in columns))
    return "\n".join(lines)


def _render(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.3g}" if abs(value) < 1000 else f"{value:.4g}"
    return str(value)


def print_table(rows: Sequence[dict], columns: Iterable[str] | None = None, title: str = "") -> None:
    print(format_table(rows, list(columns) if columns else None, title))
