"""Reference numbers reported in the paper, used for paper-vs-measured tables.

Values are read off Table 5 and Figures 8–16 of the paper.  They are only
used for reporting (EXPERIMENTS.md, benchmark output); nothing in the
library calibrates against individual per-workload speedups.
"""

from __future__ import annotations

# Figure 8a — end-to-end speedup over MADlib+PostgreSQL, warm cache.
FIG8_WARM_SPEEDUPS = {
    "Remote Sensing LR": {"greenplum": 3.4, "dana": 28.2},
    "WLAN": {"greenplum": 1.0, "dana": 18.42},
    "Remote Sensing SVM": {"greenplum": 2.7, "dana": 15.1},
    "Netflix": {"greenplum": 0.9, "dana": 6.32},
    "Patient": {"greenplum": 3.0, "dana": 3.65},
    "Blog Feedback": {"greenplum": 3.1, "dana": 1.86},
    "Geomean": {"greenplum": 2.1, "dana": 8.3},
}

# Figure 8b — cold cache.
FIG8_COLD_SPEEDUPS = {
    "Remote Sensing LR": {"greenplum": 3.2, "dana": 4.89},
    "WLAN": {"greenplum": 1.0, "dana": 14.58},
    "Remote Sensing SVM": {"greenplum": 2.4, "dana": 8.61},
    "Netflix": {"greenplum": 0.9, "dana": 6.01},
    "Patient": {"greenplum": 2.4, "dana": 2.23},
    "Blog Feedback": {"greenplum": 2.6, "dana": 1.48},
    "Geomean": {"greenplum": 1.9, "dana": 4.8},
}

# Figure 9 — synthetic nominal datasets.
FIG9_WARM_SPEEDUPS = {
    "S/N Logistic": {"greenplum": 1.1, "dana": 20.16},
    "S/N SVM": {"greenplum": 4.4, "dana": 8.7},
    "S/N LRMF": {"greenplum": 7.99, "dana": 4.17},
    "S/N Linear": {"greenplum": 1.2, "dana": 41.81},
    "Geomean": {"greenplum": 2.6, "dana": 13.2},
}
FIG9_COLD_SPEEDUPS = {
    "S/N Logistic": {"greenplum": 1.1, "dana": 10.05},
    "S/N SVM": {"greenplum": 5.5, "dana": 6.47},
    "S/N LRMF": {"greenplum": 7.78, "dana": 4.36},
    "S/N Linear": {"greenplum": 1.2, "dana": 28.74},
    "Geomean": {"greenplum": 2.7, "dana": 9.5},
}

# Figure 10 — synthetic extensive datasets.
FIG10_WARM_SPEEDUPS = {
    "S/E Logistic": {"greenplum": 7.85, "dana": 278.24},
    "S/E SVM": {"greenplum": 1.11, "dana": 4.71},
    "S/E LRMF": {"greenplum": 2.08, "dana": 1.12},
    "S/E Linear": {"greenplum": 1.23, "dana": 19.01},
    "Geomean": {"greenplum": 2.2, "dana": 12.9},
}
FIG10_COLD_SPEEDUPS = {
    "S/E Logistic": {"greenplum": 7.83, "dana": 243.78},
    "S/E SVM": {"greenplum": 0.77, "dana": 4.35},
    "S/E LRMF": {"greenplum": 1.13, "dana": 1.12},
    "S/E Linear": {"greenplum": 1.23, "dana": 17.02},
    "Geomean": {"greenplum": 1.7, "dana": 11.9},
}

# Figure 11 — DAnA with and without Striders (speedup over MADlib+PostgreSQL).
FIG11_STRIDER = {
    "Remote Sensing LR": {"without": 4.0, "with": 28.2},
    "WLAN": {"without": 12.21, "with": 18.42},
    "Remote Sensing SVM": {"without": 1.93, "with": 15.1},
    "Netflix": {"without": 0.58, "with": 6.32},
    "Patient": {"without": 0.76, "with": 3.65},
    "Blog Feedback": {"without": 1.14, "with": 1.86},
    "S/N Logistic": {"without": 19.0, "with": 20.16},
    "S/N SVM": {"without": 2.25, "with": 8.7},
    "S/N LRMF": {"without": 0.85, "with": 4.17},
    "S/N Linear": {"without": 6.28, "with": 41.81},
    "S/E Logistic": {"without": 2.91, "with": 278.24},
    "S/E SVM": {"without": 1.76, "with": 4.72},
    "S/E LRMF": {"without": 0.29, "with": 1.12},
    "S/E Linear": {"without": 6.63, "with": 19.02},
    "Geomean": {"without": 2.3, "with": 10.8},
}

# Figure 13 — Greenplum segment sweep (speedup relative to 8 segments).
FIG13_SEGMENTS = {
    "Remote Sensing LR": {"postgres": 0.31, 4: 0.87, 8: 1.00, 16: 0.69},
    "WLAN": {"postgres": 1.03, 4: 1.21, 8: 1.00, 16: 0.95},
    "Remote Sensing SVM": {"postgres": 0.42, 4: 0.96, 8: 1.00, 16: 1.26},
    "Netflix": {"postgres": 1.14, 4: 1.02, 8: 1.00, 16: 0.90},
    "Patient": {"postgres": 0.42, 4: 0.97, 8: 1.00, 16: 0.73},
    "Blog Feedback": {"postgres": 0.39, 4: 0.80, 8: 1.00, 16: 0.95},
    "Geomean": {"postgres": 0.54, 4: 0.96, 8: 1.00, 16: 0.89},
}

# Figure 14 — FPGA bandwidth sweep (speedup over baseline bandwidth), geomean.
FIG14_BANDWIDTH_GEOMEAN = {0.25: 0.82, 0.5: 0.92, 1.0: 1.0, 2.0: 1.05, 4.0: 1.08}

# Figure 16 — DAnA speedup over TABLA (geomean over ten workloads).
FIG16_TABLA_GEOMEAN = 3.8

# Table 5 — absolute runtimes (seconds).
TABLE5_RUNTIMES_S = {
    "Remote Sensing LR": {"madlib": 3.6, "greenplum": 1.1, "dana": 0.1},
    "WLAN": {"madlib": 14.0, "greenplum": 14.0, "dana": 0.61},
    "Remote Sensing SVM": {"madlib": 1.7, "greenplum": 0.6, "dana": 0.09},
    "Netflix": {"madlib": 62.3, "greenplum": 69.2, "dana": 7.89},
    "Patient": {"madlib": 2.8, "greenplum": 0.9, "dana": 1.18},
    "Blog Feedback": {"madlib": 1.6, "greenplum": 0.5, "dana": 0.34},
    "S/N Logistic": {"madlib": 3292.0, "greenplum": 2993.0, "dana": 131.0},
    "S/N SVM": {"madlib": 3386.0, "greenplum": 770.0, "dana": 244.0},
    "S/N LRMF": {"madlib": 23.0, "greenplum": 3.0, "dana": 2.0},
    "S/N Linear": {"madlib": 1747.0, "greenplum": 1456.0, "dana": 335.0},
    "S/E Logistic": {"madlib": 240300.0, "greenplum": 30600.0, "dana": 684.0},
    "S/E SVM": {"madlib": 360.0, "greenplum": 324.0, "dana": 72.0},
    "S/E LRMF": {"madlib": 3276.0, "greenplum": 1584.0, "dana": 2340.0},
    "S/E Linear": {"madlib": 23796.0, "greenplum": 19332.0, "dana": 1008.0},
}

# §1 / §7.2 headline claims.
HEADLINE = {
    "real_geomean_speedup_over_postgres": 8.3,
    "real_geomean_speedup_over_greenplum": 4.0,
    "max_speedup": 28.2,
    "strider_amplification": 4.6,
    "tabla_speedup": 4.7,
}
