"""Regenerate every table and figure as one plain-text report.

Usage::

    python -m repro.harness.reportgen            # print to stdout
    python -m repro.harness.reportgen report.txt # write to a file

The report runs every experiment registered in
:data:`repro.harness.experiments.EXPERIMENTS` and renders its rows with the
same formatter the benchmarks use, giving a single artifact that mirrors the
paper's evaluation section.
"""

from __future__ import annotations

import sys
import time

from repro.harness.experiments import EXPERIMENTS
from repro.harness.tables import format_table

_TITLES = {
    "table2_strider_isa": "Table 2 — Strider ISA page-walk programs",
    "table3_workloads": "Table 3 — datasets and models",
    "table5_absolute_runtimes": "Table 5 — absolute runtimes",
    "fig8_real_warm": "Figure 8a — real datasets, warm cache",
    "fig8_real_cold": "Figure 8b — real datasets, cold cache",
    "fig9_sn_warm": "Figure 9a — synthetic nominal, warm cache",
    "fig9_sn_cold": "Figure 9b — synthetic nominal, cold cache",
    "fig10_se_warm": "Figure 10a — synthetic extensive, warm cache",
    "fig10_se_cold": "Figure 10b — synthetic extensive, cold cache",
    "fig11_strider_benefit": "Figure 11 — DAnA with vs without Striders",
    "fig12_thread_sweep": "Figure 12 — runtime vs merge coefficient",
    "fig13_greenplum_segments": "Figure 13 — Greenplum segment sweep",
    "fig14_bandwidth_sweep": "Figure 14 — FPGA bandwidth sweep",
    "fig15_external_breakdown": "Figure 15a — external-library runtime breakdown",
    "fig15_end_to_end": "Figure 15c — end-to-end comparison with external libraries",
    "fig16_tabla": "Figure 16 — DAnA vs TABLA",
    "ablation_design_space": "Ablation — hardware-generator design space",
}


def generate_report(experiment_names: list[str] | None = None) -> str:
    """Run the selected experiments (default: all) and render the report."""
    names = experiment_names or list(EXPERIMENTS)
    sections = [
        "DAnA reproduction — full experiment report",
        "=" * 44,
    ]
    for name in names:
        fn = EXPERIMENTS[name]
        started = time.perf_counter()
        rows = fn()
        elapsed = time.perf_counter() - started
        title = _TITLES.get(name, name)
        sections.append("")
        sections.append(format_table(rows, title=f"{title}   [{elapsed:.2f}s]"))
    sections.append("")
    return "\n".join(sections)


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    report = generate_report()
    if argv:
        with open(argv[0], "w", encoding="utf-8") as handle:
            handle.write(report)
        print(f"wrote {argv[0]} ({len(report.splitlines())} lines)")
    else:
        print(report)
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    raise SystemExit(main())
