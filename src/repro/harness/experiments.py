"""Experiment registry: one function per table/figure of the paper.

Every function returns a list of plain dictionaries (one per row/bar of the
original artifact) so that the benchmark harness, the EXPERIMENTS.md
generator and interactive users all consume the same data.  Columns named
``paper_*`` carry the value read off the paper for side-by-side comparison.
"""

from __future__ import annotations

from typing import Iterable

from repro.compiler import DesignSpaceExplorer, WorkloadShape, compile_strider
from repro.data import (
    WORKLOADS,
    Workload,
    get_workload,
    real_workloads,
    synthetic_extensive_workloads,
    synthetic_nominal_workloads,
)
from repro.harness import paper_values
from repro.hw.fpga import DEFAULT_FPGA
from repro.perf import (
    DAnAModel,
    ExternalLibraryModel,
    GreenplumModel,
    MADlibPostgresModel,
    TABLAModel,
    epochs_for,
    format_seconds,
    geomean,
)
from repro.rdbms.page import PageLayout
from repro.rdbms.types import Schema


# ---------------------------------------------------------------------- #
# shared helpers
# ---------------------------------------------------------------------- #
def _speedup_rows(
    workloads: Iterable[Workload],
    warm_cache: bool,
    paper_table: dict[str, dict[str, float]],
) -> list[dict]:
    """Speedups over MADlib+PostgreSQL for Greenplum and DAnA."""
    madlib = MADlibPostgresModel()
    greenplum = GreenplumModel(segments=8)
    dana = DAnAModel()
    rows = []
    gp_speedups, dana_speedups = [], []
    for workload in workloads:
        epochs = epochs_for(workload)
        base = madlib.estimate(workload, epochs, warm_cache)
        gp = greenplum.estimate(workload, epochs, warm_cache)
        da = dana.estimate(workload, epochs, warm_cache)
        gp_speedup = gp.speedup_over(base) if False else base.total / gp.total
        dana_speedup = base.total / da.total
        gp_speedups.append(gp_speedup)
        dana_speedups.append(dana_speedup)
        paper = paper_table.get(workload.name, {})
        rows.append(
            {
                "workload": workload.name,
                "madlib_speedup": 1.0,
                "greenplum_speedup": round(gp_speedup, 2),
                "dana_speedup": round(dana_speedup, 2),
                "paper_greenplum_speedup": paper.get("greenplum"),
                "paper_dana_speedup": paper.get("dana"),
                "warm_cache": warm_cache,
            }
        )
    paper_geo = paper_table.get("Geomean", {})
    rows.append(
        {
            "workload": "Geomean",
            "madlib_speedup": 1.0,
            "greenplum_speedup": round(geomean(gp_speedups), 2),
            "dana_speedup": round(geomean(dana_speedups), 2),
            "paper_greenplum_speedup": paper_geo.get("greenplum"),
            "paper_dana_speedup": paper_geo.get("dana"),
            "warm_cache": warm_cache,
        }
    )
    return rows


# ---------------------------------------------------------------------- #
# Table 2 / Table 3 / Table 5
# ---------------------------------------------------------------------- #
def table2_strider_isa() -> list[dict]:
    """Strider ISA programs generated for the supported page sizes."""
    rows = []
    for page_size in (8 * 1024, 16 * 1024, 32 * 1024):
        layout = PageLayout(page_size=page_size)
        schema = Schema.training_schema(54)
        result = compile_strider(layout, schema)
        encoded = result.program.encode()
        rows.append(
            {
                "page_size": page_size,
                "instructions": len(result.program),
                "header_instructions": result.header_instructions,
                "loop_instructions": result.loop_instructions,
                "constants": len(result.program.constants),
                "instruction_bits": 22,
                "all_words_fit_22_bits": all(word < (1 << 22) for word in encoded),
            }
        )
    return rows


def table3_workloads() -> list[dict]:
    """Table 3: dataset and model descriptions."""
    rows = []
    for workload in WORKLOADS:
        rows.append(
            {
                "workload": workload.name,
                "algorithm": workload.algorithm_key,
                "model_topology": "x".join(str(d) for d in workload.model_topology),
                "tuples": workload.paper_tuples,
                "pages_32kb": workload.paper_pages,
                "size_mb": workload.paper_size_mb,
                "category": workload.category,
            }
        )
    return rows


def table5_absolute_runtimes() -> list[dict]:
    """Table 5: absolute runtimes of the three systems."""
    madlib = MADlibPostgresModel()
    greenplum = GreenplumModel(segments=8)
    dana = DAnAModel()
    rows = []
    for workload in WORKLOADS:
        epochs = epochs_for(workload)
        paper = paper_values.TABLE5_RUNTIMES_S.get(workload.name, {})
        m = madlib.estimate(workload, epochs)
        g = greenplum.estimate(workload, epochs)
        d = dana.estimate(workload, epochs)
        rows.append(
            {
                "workload": workload.name,
                "madlib_postgres": format_seconds(m.total),
                "madlib_greenplum": format_seconds(g.total),
                "dana_postgres": format_seconds(d.total),
                "madlib_postgres_s": round(m.total, 3),
                "madlib_greenplum_s": round(g.total, 3),
                "dana_postgres_s": round(d.total, 3),
                "paper_madlib_postgres_s": paper.get("madlib"),
                "paper_madlib_greenplum_s": paper.get("greenplum"),
                "paper_dana_postgres_s": paper.get("dana"),
            }
        )
    return rows


# ---------------------------------------------------------------------- #
# Figures 8, 9, 10 — end-to-end speedups
# ---------------------------------------------------------------------- #
def fig8_real_datasets(warm_cache: bool = True) -> list[dict]:
    paper = paper_values.FIG8_WARM_SPEEDUPS if warm_cache else paper_values.FIG8_COLD_SPEEDUPS
    return _speedup_rows(real_workloads(), warm_cache, paper)


def fig9_synthetic_nominal(warm_cache: bool = True) -> list[dict]:
    paper = paper_values.FIG9_WARM_SPEEDUPS if warm_cache else paper_values.FIG9_COLD_SPEEDUPS
    return _speedup_rows(synthetic_nominal_workloads(), warm_cache, paper)


def fig10_synthetic_extensive(warm_cache: bool = True) -> list[dict]:
    paper = paper_values.FIG10_WARM_SPEEDUPS if warm_cache else paper_values.FIG10_COLD_SPEEDUPS
    return _speedup_rows(synthetic_extensive_workloads(), warm_cache, paper)


# ---------------------------------------------------------------------- #
# Figure 11 — Strider ablation
# ---------------------------------------------------------------------- #
def fig11_strider_benefit() -> list[dict]:
    madlib = MADlibPostgresModel()
    dana = DAnAModel()
    no_strider = dana.without_striders()
    rows = []
    with_speedups, without_speedups = [], []
    for workload in WORKLOADS:
        epochs = epochs_for(workload)
        base = madlib.estimate(workload, epochs)
        with_s = base.total / dana.estimate(workload, epochs).total
        without_s = base.total / no_strider.estimate(workload, epochs).total
        with_speedups.append(with_s)
        without_speedups.append(without_s)
        paper = paper_values.FIG11_STRIDER.get(workload.name, {})
        rows.append(
            {
                "workload": workload.name,
                "dana_without_strider": round(without_s, 2),
                "dana_with_strider": round(with_s, 2),
                "strider_amplification": round(with_s / without_s, 2),
                "paper_without": paper.get("without"),
                "paper_with": paper.get("with"),
            }
        )
    paper_geo = paper_values.FIG11_STRIDER["Geomean"]
    rows.append(
        {
            "workload": "Geomean",
            "dana_without_strider": round(geomean(without_speedups), 2),
            "dana_with_strider": round(geomean(with_speedups), 2),
            "strider_amplification": round(
                geomean(with_speedups) / geomean(without_speedups), 2
            ),
            "paper_without": paper_geo["without"],
            "paper_with": paper_geo["with"],
        }
    )
    return rows


# ---------------------------------------------------------------------- #
# Figure 12 — thread (merge-coefficient) sweep
# ---------------------------------------------------------------------- #
FIG12_WORKLOADS = ("Remote Sensing LR", "Remote Sensing SVM", "Netflix", "Patient")
FIG12_COEFFICIENTS = (1, 4, 16, 64, 256, 1024)


def fig12_thread_sweep(
    workload_names: Iterable[str] = FIG12_WORKLOADS,
    coefficients: Iterable[int] = FIG12_COEFFICIENTS,
) -> list[dict]:
    """DAnA accelerator runtime versus the merge coefficient (thread count)."""
    rows = []
    for name in workload_names:
        workload = get_workload(name)
        epochs = epochs_for(workload)
        baseline_model = DAnAModel(merge_coefficient=1, max_threads=1)
        baseline_cost = baseline_model.epoch_cost(workload)
        baseline_seconds = baseline_cost.engine_seconds(0.05, overlapped=True) * epochs
        for coefficient in coefficients:
            model = DAnAModel(merge_coefficient=coefficient)
            cost = model.epoch_cost(workload)
            seconds = cost.engine_seconds(0.05, overlapped=True) * epochs
            design, _ = model.design_for(workload)
            rows.append(
                {
                    "workload": name,
                    "merge_coefficient": coefficient,
                    "threads": design.threads,
                    "runtime_vs_single_thread": round(seconds / baseline_seconds, 3),
                    "compute_utilization": round(
                        min(1.0, cost.compute_seconds / max(cost.data_seconds, 1e-12)), 3
                    ),
                }
            )
    return rows


# ---------------------------------------------------------------------- #
# Figure 13 — Greenplum segment sweep
# ---------------------------------------------------------------------- #
#: Workloads whose functional sharded-DAnA column is populated by default
#: (one merge-based and one row-addressed algorithm keeps the harness fast;
#: pass ``functional_workloads=None`` to measure every real workload).
FIG13_FUNCTIONAL_WORKLOADS = ("Remote Sensing LR", "Netflix")


def _functional_segment_speedups(
    workload: Workload,
    segment_counts: Iterable[int],
    epochs: int = 2,
    seed: int = 0,
) -> dict[int, float]:
    """Measured sharded-DAnA speedups (vs 8 segments) at functional scale.

    Runs the *functional* sharded subsystem (:mod:`repro.cluster`) on the
    workload's laptop-scale dataset and normalises the measured
    critical-path cycles — slowest segment plus cross-segment merge — to
    the 8-segment deployment, mirroring the analytical column.
    """
    from repro.algorithms import Hyperparameters, get_algorithm
    from repro.core import DAnA
    from repro.perf.segment_model import measured_segment_sweep
    from repro.rdbms import Database

    algorithm = get_algorithm(workload.algorithm_key)
    hyper = Hyperparameters(
        learning_rate=workload.learning_rate,
        merge_coefficient=workload.merge_coefficient,
        epochs=epochs,
    )
    topology = workload.functional_topology()
    n_features = (
        topology[0] if workload.algorithm_key != "lrmf" else workload.func_features
    )
    spec = algorithm.build_spec(n_features, hyper, topology)
    database = Database(page_size=8 * 1024)
    database.load_table("training_data_table", spec.schema, workload.generate(seed=seed))
    database.warm_cache("training_data_table")
    system = DAnA(database)
    system.register_udf("fig13", spec, epochs=epochs)
    runs = {
        segments: system.train(
            "fig13", "training_data_table", epochs=epochs, segments=segments, seed=seed
        )
        for segments in sorted(set(segment_counts) | {8})
    }
    sweep = measured_segment_sweep(runs, reference_segments=8)
    return {segments: row["speedup_vs_reference"] for segments, row in sweep.items()}


def fig13_greenplum_segments(
    segment_counts: Iterable[int] = (4, 8, 16),
    functional_workloads: Iterable[str] | None = FIG13_FUNCTIONAL_WORKLOADS,
    functional_epochs: int = 2,
) -> list[dict]:
    """Analytical Greenplum sweep + measured functional sharded-DAnA column.

    The ``speedup_vs_8_segments`` column reproduces the paper's analytical
    sweep; ``functional_speedup_vs_8_segments`` holds the same ratio
    measured on the sharded execution subsystem's cycle counters (None for
    the plain-PostgreSQL row and for workloads outside
    ``functional_workloads``).
    """
    segment_counts = tuple(segment_counts)
    rows = []
    madlib = MADlibPostgresModel()
    reference = GreenplumModel(segments=8)
    selected = (
        {w.name for w in real_workloads()}
        if functional_workloads is None
        else set(functional_workloads)
    )
    for workload in real_workloads():
        epochs = epochs_for(workload)
        reference_total = reference.estimate(workload, epochs).total
        paper = paper_values.FIG13_SEGMENTS.get(workload.name, {})
        postgres_total = madlib.estimate(workload, epochs).total
        functional = (
            _functional_segment_speedups(
                workload, segment_counts, epochs=functional_epochs
            )
            if workload.name in selected
            else {}
        )
        rows.append(
            {
                "workload": workload.name,
                "segments": "postgres",
                "speedup_vs_8_segments": round(reference_total / postgres_total, 2),
                "functional_speedup_vs_8_segments": None,
                "paper_value": paper.get("postgres"),
            }
        )
        for segments in segment_counts:
            total = GreenplumModel(segments=segments).estimate(workload, epochs).total
            rows.append(
                {
                    "workload": workload.name,
                    "segments": segments,
                    "speedup_vs_8_segments": round(reference_total / total, 2),
                    "functional_speedup_vs_8_segments": functional.get(segments),
                    "paper_value": paper.get(segments),
                }
            )
    return rows


# ---------------------------------------------------------------------- #
# Figure 14 — FPGA bandwidth sweep
# ---------------------------------------------------------------------- #
def fig14_bandwidth_sweep(scales: Iterable[float] = (0.25, 0.5, 1.0, 2.0, 4.0)) -> list[dict]:
    rows = []
    base_model = DAnAModel()
    speedups_by_scale: dict[float, list[float]] = {s: [] for s in scales}
    for workload in WORKLOADS:
        epochs = epochs_for(workload)
        baseline = base_model.estimate(workload, epochs).total
        for scale in scales:
            scaled = base_model.with_bandwidth_scale(scale).estimate(workload, epochs).total
            speedup = baseline / scaled
            speedups_by_scale[scale].append(speedup)
            rows.append(
                {
                    "workload": workload.name,
                    "bandwidth_scale": scale,
                    "speedup_vs_baseline_bandwidth": round(speedup, 3),
                }
            )
    for scale in scales:
        rows.append(
            {
                "workload": "Geomean",
                "bandwidth_scale": scale,
                "speedup_vs_baseline_bandwidth": round(geomean(speedups_by_scale[scale]), 3),
                "paper_value": paper_values.FIG14_BANDWIDTH_GEOMEAN.get(scale),
            }
        )
    return rows


# ---------------------------------------------------------------------- #
# Figure 15 — external libraries
# ---------------------------------------------------------------------- #
FIG15_WORKLOADS = (
    "Remote Sensing LR",
    "WLAN",
    "S/N Logistic",
    "Remote Sensing SVM",
    "S/N SVM",
    "Patient",
    "Blog Feedback",
    "S/N Linear",
)


def fig15_external_breakdown() -> list[dict]:
    """Figure 15a: runtime breakdown of Liblinear and DimmWitted.

    The paper compares the runtime of a single epoch across systems for this
    experiment (§7.3), so the breakdown is computed for one pass.
    """
    rows = []
    for library in ("Liblinear", "DimmWitted"):
        model = ExternalLibraryModel(library=library)
        for name in FIG15_WORKLOADS:
            workload = get_workload(name)
            if not model.supports(workload):
                continue
            fractions = model.breakdown_fractions(workload, epochs=1)
            rows.append(
                {
                    "library": library,
                    "workload": name,
                    "data_export_pct": round(100 * fractions["data_export"], 1),
                    "data_transform_pct": round(100 * fractions["data_transform"], 1),
                    "compute_pct": round(100 * fractions["compute"], 1),
                }
            )
    return rows


def fig15_end_to_end() -> list[dict]:
    """Figure 15c: end-to-end runtime comparison including DAnA.

    As in the paper (§7.3), every system runs a single epoch with identical
    hyper-parameters for this comparison.
    """
    madlib = MADlibPostgresModel()
    greenplum = GreenplumModel(segments=8)
    dana = DAnAModel()
    rows = []
    for name in FIG15_WORKLOADS:
        workload = get_workload(name)
        epochs = 1
        base = madlib.estimate(workload, epochs)
        row = {
            "workload": name,
            "algorithm": workload.algorithm_key,
            "madlib_postgres": 1.0,
            "madlib_greenplum": round(base.total / greenplum.estimate(workload, epochs).total, 2),
            "dana": round(base.total / dana.estimate(workload, epochs).total, 2),
        }
        for library in ("Liblinear", "DimmWitted"):
            model = ExternalLibraryModel(library=library)
            if model.supports(workload):
                row[library.lower()] = round(
                    base.total / model.estimate(workload, epochs).total, 2
                )
            else:
                row[library.lower()] = None
        rows.append(row)
    return rows


# ---------------------------------------------------------------------- #
# Figure 16 — TABLA comparison
# ---------------------------------------------------------------------- #
FIG16_WORKLOADS = (
    "Remote Sensing LR",
    "WLAN",
    "Remote Sensing SVM",
    "Netflix",
    "Patient",
    "Blog Feedback",
    "S/N Logistic",
    "S/N SVM",
    "S/N LRMF",
    "S/N Linear",
)


def fig16_tabla() -> list[dict]:
    dana = DAnAModel()
    tabla = TABLAModel()
    rows = []
    speedups = []
    for name in FIG16_WORKLOADS:
        workload = get_workload(name)
        epochs = epochs_for(workload)
        dana_total = dana.estimate(workload, epochs).total
        tabla_total = tabla.estimate(workload, epochs).total
        speedup = tabla_total / dana_total
        speedups.append(speedup)
        rows.append({"workload": name, "dana_speedup_over_tabla": round(speedup, 2)})
    rows.append(
        {
            "workload": "Geomean",
            "dana_speedup_over_tabla": round(geomean(speedups), 2),
            "paper_value": paper_values.FIG16_TABLA_GEOMEAN,
        }
    )
    return rows


# ---------------------------------------------------------------------- #
# Ablation: hardware-generator design-space exploration
# ---------------------------------------------------------------------- #
def ablation_design_space(workload_name: str = "Remote Sensing LR") -> list[dict]:
    """Candidate design points the hardware generator considers (§6.1)."""
    workload = get_workload(workload_name)
    model = DAnAModel(merge_coefficient=1024)
    design, graph = model.design_for(workload)
    rows = []
    for point in design.candidates:
        rows.append(
            {
                "workload": workload_name,
                "threads": point.threads,
                "acs_per_thread": point.acs_per_thread,
                "total_aus": point.total_aus,
                "update_rule_cycles": point.update_rule_cycles,
                "merge_cycles": point.merge_cycles,
                "compute_cycles_per_epoch": point.compute_cycles_per_epoch,
                "data_cycles_per_epoch": point.data_cycles_per_epoch,
                "cycles_per_epoch": point.cycles_per_epoch,
                "bandwidth_bound": point.is_bandwidth_bound,
                "chosen": point.threads == design.threads,
            }
        )
    return rows


#: Registry used by EXPERIMENTS.md generation and the benchmark harness.
EXPERIMENTS = {
    "table2_strider_isa": table2_strider_isa,
    "table3_workloads": table3_workloads,
    "table5_absolute_runtimes": table5_absolute_runtimes,
    "fig8_real_warm": lambda: fig8_real_datasets(True),
    "fig8_real_cold": lambda: fig8_real_datasets(False),
    "fig9_sn_warm": lambda: fig9_synthetic_nominal(True),
    "fig9_sn_cold": lambda: fig9_synthetic_nominal(False),
    "fig10_se_warm": lambda: fig10_synthetic_extensive(True),
    "fig10_se_cold": lambda: fig10_synthetic_extensive(False),
    "fig11_strider_benefit": fig11_strider_benefit,
    "fig12_thread_sweep": fig12_thread_sweep,
    "fig13_greenplum_segments": fig13_greenplum_segments,
    "fig14_bandwidth_sweep": fig14_bandwidth_sweep,
    "fig15_external_breakdown": fig15_external_breakdown,
    "fig15_end_to_end": fig15_end_to_end,
    "fig16_tabla": fig16_tabla,
    "ablation_design_space": ablation_design_space,
}
