"""Experiment harness: regenerates every table and figure of the paper."""

from repro.harness import paper_values
from repro.harness.tables import format_table, print_table

__all__ = ["format_table", "paper_values", "print_table"]
