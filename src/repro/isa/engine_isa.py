"""Execution-engine ISA: variable-length selective-SIMD micro-instructions.

The execution engine (paper §5.2) is organised as threads → Analytic
Clusters (AC) → Analytic Units (AU).  Each AC holds one *cluster-level*
instruction per cycle: an ALU operation plus a per-AU enable mask
("selective SIMD": every enabled AU performs the cluster operation, the
rest issue a NOP).  Finer details — where each AU reads its operands and
where it writes its result — are stored per AU.

The paper's engine ISA lives in Appendix B of the tech report, which is not
part of the main text; the encoding below is a faithful reconstruction of
the description in §5.2: cluster-level opcode + enable mask, per-AU source
selectors (data memory, left/right neighbour register, bus FIFO, immediate)
and a destination selector (data memory, neighbours, bus, output).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.exceptions import ISAError
from repro.dsl.operations import ALU_LATENCY, Operator

AUS_PER_CLUSTER = 8


class SourceKind(Enum):
    """Where an AU operand comes from."""

    DATA_MEMORY = "mem"        # the AU's private data-memory scratchpad
    LEFT_NEIGHBOR = "left"     # the register of the AU to the left
    RIGHT_NEIGHBOR = "right"   # the register of the AU to the right
    BUS = "bus"                # the intra-cluster shared bus FIFO
    IMMEDIATE = "imm"          # an immediate constant
    NONE = "none"              # unused operand (unary operations)


class DestKind(Enum):
    """Where an AU writes its result."""

    DATA_MEMORY = "mem"
    NEIGHBORS = "neighbors"
    BUS = "bus"
    OUTPUT = "out"             # leaves the thread toward the tree bus


@dataclass(frozen=True)
class AUOperand:
    kind: SourceKind
    address: int = 0
    value: float = 0.0

    def __str__(self) -> str:
        if self.kind is SourceKind.IMMEDIATE:
            return f"#{self.value}"
        if self.kind is SourceKind.DATA_MEMORY:
            return f"mem[{self.address}]"
        return self.kind.value


@dataclass(frozen=True)
class AUInstruction:
    """Per-AU detail of one cluster instruction slot."""

    au_index: int
    src_a: AUOperand
    src_b: AUOperand
    dest_kind: DestKind
    dest_address: int = 0
    node_id: int = -1           # hDFG node this atomic operation belongs to
    element_index: int = 0      # which element of that node is computed

    def __post_init__(self) -> None:
        if not 0 <= self.au_index < AUS_PER_CLUSTER:
            raise ISAError(f"AU index {self.au_index} out of range")


@dataclass
class ACInstruction:
    """One cluster-level selective-SIMD instruction."""

    cluster_id: int
    operation: Operator
    au_slots: list[AUInstruction] = field(default_factory=list)

    @property
    def enable_mask(self) -> int:
        mask = 0
        for slot in self.au_slots:
            mask |= 1 << slot.au_index
        return mask

    @property
    def enabled_au_count(self) -> int:
        return len(self.au_slots)

    @property
    def latency(self) -> int:
        return max(1, ALU_LATENCY.get(self.operation, 1))

    def add_slot(self, slot: AUInstruction) -> None:
        if any(s.au_index == slot.au_index for s in self.au_slots):
            raise ISAError(
                f"AU {slot.au_index} already has an operation in this instruction"
            )
        self.au_slots.append(slot)

    def __str__(self) -> str:
        return (
            f"AC{self.cluster_id}: {self.operation.value} "
            f"mask={self.enable_mask:08b} ({self.enabled_au_count} AUs)"
        )


@dataclass
class EngineStep:
    """All cluster instructions issued in one engine cycle of one thread."""

    step: int
    cluster_instructions: list[ACInstruction] = field(default_factory=list)

    @property
    def latency(self) -> int:
        if not self.cluster_instructions:
            return 1
        return max(ci.latency for ci in self.cluster_instructions)

    @property
    def operation_count(self) -> int:
        return sum(ci.enabled_au_count for ci in self.cluster_instructions)


@dataclass
class EngineProgram:
    """The complete static schedule for one execution-engine thread.

    ``update_rule_steps`` run once per consumed training tuple;
    ``post_merge_steps`` run once per merge batch on the tree bus / lead
    thread; ``convergence_steps`` run once per epoch.
    """

    update_rule_steps: list[EngineStep] = field(default_factory=list)
    post_merge_steps: list[EngineStep] = field(default_factory=list)
    convergence_steps: list[EngineStep] = field(default_factory=list)

    @property
    def update_rule_cycles(self) -> int:
        return sum(step.latency for step in self.update_rule_steps)

    @property
    def post_merge_cycles(self) -> int:
        return sum(step.latency for step in self.post_merge_steps)

    @property
    def convergence_cycles(self) -> int:
        return sum(step.latency for step in self.convergence_steps)

    @property
    def total_operations(self) -> int:
        return sum(
            step.operation_count
            for steps in (
                self.update_rule_steps,
                self.post_merge_steps,
                self.convergence_steps,
            )
            for step in steps
        )

    def instruction_footprint(self) -> int:
        """Number of cluster-level instructions stored in instruction buffers."""
        return sum(
            len(step.cluster_instructions)
            for steps in (
                self.update_rule_steps,
                self.post_merge_steps,
                self.convergence_steps,
            )
            for step in steps
        )
