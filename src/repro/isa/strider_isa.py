"""Strider Instruction Set Architecture (paper Table 2).

Every Strider instruction is 22 bits long: a 4-bit opcode followed by three
6-bit operand fields.  The ten instructions read bytes from the page
buffer, extract byte/bit ranges, cleanse tuple data, perform the small
integer arithmetic needed for pointer chasing, and express loops with
branch-enter / branch-exit markers.

Because a 6-bit field cannot hold a byte address inside a 32 KB page, large
values always live in registers: the compiler pre-loads page-layout
constants into **configuration registers** (``%cr``) through the
configuration-data channel (paper Figure 5, "Insert Constants"), while
**temporary registers** (``%t``) hold values produced while walking the
page.  Within an operand field:

* values ``0 .. 31``   encode an immediate constant,
* values ``32 .. 47``  encode configuration registers ``%cr0 .. %cr15``,
* values ``48 .. 63``  encode temporary registers ``%t0 .. %t15``.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable

from repro.exceptions import ISAError

INSTRUCTION_BITS = 22
OPCODE_BITS = 4
FIELD_BITS = 6
NUM_CONFIG_REGISTERS = 16
NUM_TEMP_REGISTERS = 16

_IMMEDIATE_LIMIT = 32
_CR_BASE = 32
_TR_BASE = 48


class StriderOpcode(Enum):
    """The ten Strider opcodes of Table 2."""

    READB = 0    # read bytes from the page buffer into the staging register
    EXTRB = 1    # extract a byte range from the staging register
    WRITEB = 2   # write bytes from a register back to the page buffer
    EXTRBI = 3   # extract a bit range from the staging register
    CLN = 4      # cleanse staged tuple data and emit it to the output FIFO
    INS = 5      # insert constant bytes into the staging register
    AD = 6       # integer add
    SUB = 7      # integer subtract
    MUL = 8      # integer multiply
    BENTR = 9    # loop entry marker
    BEXIT = 10   # conditional loop exit

    @property
    def mnemonic(self) -> str:
        return _MNEMONICS[self]


_MNEMONICS = {
    StriderOpcode.READB: "readB",
    StriderOpcode.EXTRB: "extrB",
    StriderOpcode.WRITEB: "writeB",
    StriderOpcode.EXTRBI: "extrBi",
    StriderOpcode.CLN: "cln",
    StriderOpcode.INS: "ins",
    StriderOpcode.AD: "ad",
    StriderOpcode.SUB: "sub",
    StriderOpcode.MUL: "mul",
    StriderOpcode.BENTR: "bentr",
    StriderOpcode.BEXIT: "bexit",
}
_MNEMONIC_TO_OPCODE = {v.lower(): k for k, v in _MNEMONICS.items()}


class OperandKind(Enum):
    IMMEDIATE = "imm"
    CONFIG = "cr"
    TEMP = "t"


@dataclass(frozen=True)
class Operand:
    """One 6-bit operand: an immediate or a register reference."""

    kind: OperandKind
    value: int

    def __post_init__(self) -> None:
        if self.kind is OperandKind.IMMEDIATE and not 0 <= self.value < _IMMEDIATE_LIMIT:
            raise ISAError(
                f"immediate {self.value} out of range (0..{_IMMEDIATE_LIMIT - 1}); "
                "larger constants must be pre-loaded into a configuration register"
            )
        if self.kind is not OperandKind.IMMEDIATE and not 0 <= self.value < 16:
            raise ISAError(f"register index {self.value} out of range (0..15)")

    # ------------------------------------------------------------------ #
    # encoding
    # ------------------------------------------------------------------ #
    def encode(self) -> int:
        if self.kind is OperandKind.IMMEDIATE:
            return self.value
        if self.kind is OperandKind.CONFIG:
            return _CR_BASE + self.value
        return _TR_BASE + self.value

    @classmethod
    def decode(cls, field: int) -> "Operand":
        if not 0 <= field < (1 << FIELD_BITS):
            raise ISAError(f"operand field {field} does not fit in {FIELD_BITS} bits")
        if field < _IMMEDIATE_LIMIT:
            return cls(OperandKind.IMMEDIATE, field)
        if field < _TR_BASE:
            return cls(OperandKind.CONFIG, field - _CR_BASE)
        return cls(OperandKind.TEMP, field - _TR_BASE)

    # ------------------------------------------------------------------ #
    # assembly text
    # ------------------------------------------------------------------ #
    def __str__(self) -> str:
        if self.kind is OperandKind.IMMEDIATE:
            return str(self.value)
        if self.kind is OperandKind.CONFIG:
            return f"%cr{self.value}"
        return f"%t{self.value}"

    @classmethod
    def parse(cls, text: str) -> "Operand":
        text = text.strip()
        if text.startswith("%cr"):
            return cls(OperandKind.CONFIG, int(text[3:]))
        if text.startswith("%t"):
            return cls(OperandKind.TEMP, int(text[2:]))
        try:
            return cls(OperandKind.IMMEDIATE, int(text, 0))
        except ValueError:
            raise ISAError(f"cannot parse operand {text!r}") from None


def imm(value: int) -> Operand:
    """Shorthand for an immediate operand."""
    return Operand(OperandKind.IMMEDIATE, value)


def cr(index: int) -> Operand:
    """Shorthand for a configuration-register operand."""
    return Operand(OperandKind.CONFIG, index)


def tr(index: int) -> Operand:
    """Shorthand for a temporary-register operand."""
    return Operand(OperandKind.TEMP, index)


_ZERO = Operand(OperandKind.IMMEDIATE, 0)


@dataclass(frozen=True)
class StriderInstruction:
    """One decoded 22-bit Strider instruction."""

    opcode: StriderOpcode
    op0: Operand = _ZERO
    op1: Operand = _ZERO
    op2: Operand = _ZERO

    # ------------------------------------------------------------------ #
    # binary encoding
    # ------------------------------------------------------------------ #
    def encode(self) -> int:
        word = self.opcode.value & ((1 << OPCODE_BITS) - 1)
        word = (word << FIELD_BITS) | self.op0.encode()
        word = (word << FIELD_BITS) | self.op1.encode()
        word = (word << FIELD_BITS) | self.op2.encode()
        return word

    @classmethod
    def decode(cls, word: int) -> "StriderInstruction":
        if not 0 <= word < (1 << INSTRUCTION_BITS):
            raise ISAError(f"instruction word {word:#x} does not fit in 22 bits")
        op2 = Operand.decode(word & 0x3F)
        op1 = Operand.decode((word >> FIELD_BITS) & 0x3F)
        op0 = Operand.decode((word >> (2 * FIELD_BITS)) & 0x3F)
        opcode_value = word >> (3 * FIELD_BITS)
        try:
            opcode = StriderOpcode(opcode_value)
        except ValueError:
            raise ISAError(f"unknown opcode {opcode_value}") from None
        return cls(opcode, op0, op1, op2)

    # ------------------------------------------------------------------ #
    # assembly text
    # ------------------------------------------------------------------ #
    def to_assembly(self) -> str:
        if self.opcode is StriderOpcode.BENTR:
            return self.opcode.mnemonic
        return f"{self.opcode.mnemonic} {self.op0}, {self.op1}, {self.op2}"

    @classmethod
    def parse(cls, line: str) -> "StriderInstruction":
        line = line.split("#", 1)[0].split("\\\\", 1)[0].strip()
        if not line:
            raise ISAError("cannot parse an empty assembly line")
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        if mnemonic not in _MNEMONIC_TO_OPCODE:
            raise ISAError(f"unknown mnemonic {parts[0]!r}")
        opcode = _MNEMONIC_TO_OPCODE[mnemonic]
        operands = []
        if len(parts) > 1:
            operands = [Operand.parse(p) for p in parts[1].split(",") if p.strip()]
        while len(operands) < 3:
            operands.append(_ZERO)
        if len(operands) > 3:
            raise ISAError(f"too many operands in {line!r}")
        return cls(opcode, *operands)

    def __str__(self) -> str:
        return self.to_assembly()


@dataclass
class StriderProgram:
    """A full Strider program plus the constant pool for its config registers.

    ``constants`` maps configuration-register indexes to the values that are
    shipped over the configuration-data channel before execution starts.
    """

    instructions: list[StriderInstruction]
    constants: dict[int, int]
    description: str = ""

    def __len__(self) -> int:
        return len(self.instructions)

    def encode(self) -> list[int]:
        """Encode the whole program into 22-bit instruction words."""
        return [inst.encode() for inst in self.instructions]

    @classmethod
    def decode(cls, words: Iterable[int], constants: dict[int, int] | None = None) -> "StriderProgram":
        return cls(
            instructions=[StriderInstruction.decode(w) for w in words],
            constants=dict(constants or {}),
        )

    def to_assembly(self) -> str:
        lines = [f"# {self.description}"] if self.description else []
        for reg, value in sorted(self.constants.items()):
            lines.append(f"# const %cr{reg} = {value}")
        lines.extend(inst.to_assembly() for inst in self.instructions)
        return "\n".join(lines)

    @classmethod
    def parse(cls, text: str) -> "StriderProgram":
        """Parse an assembly listing (ignoring comments) into a program."""
        instructions = []
        constants: dict[int, int] = {}
        for raw_line in text.splitlines():
            line = raw_line.strip()
            if not line:
                continue
            if line.startswith("#"):
                stripped = line.lstrip("#").strip()
                if stripped.startswith("const"):
                    _, reg, _, value = stripped.split()
                    constants[int(reg.lstrip("%cr"))] = int(value)
                continue
            instructions.append(StriderInstruction.parse(line))
        return cls(instructions=instructions, constants=constants)

    def instruction_count(self) -> int:
        return len(self.instructions)
