#!/usr/bin/env python
"""CI check: every public def/class in the public packages has a docstring.

The architecture documentation (``docs/architecture.md``) promises that the
public API surface is self-describing; this script keeps that promise from
rotting.  It walks ``src/repro/{core,rdbms,serving}`` with the ``ast``
module and fails (exit code 1) listing every public module-level or
class-level function, method or class whose body does not start with a
docstring.

Public means the name does not start with ``_``.  Dunder methods
(``__init__``, ``__call__``, ...) are exempt — their contract is the
class's; so are nested (function-local) defs.  ``@overload`` stubs and
``...``-body protocol methods are *not* exempt: a one-line docstring is
cheap and they are exactly the defs readers hit first.

Run from the repository root::

    python tools/check_docstrings.py [--packages core rdbms serving]
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: packages whose public defs must be documented (repro.<name>).
DEFAULT_PACKAGES = ("core", "rdbms", "serving")


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _walk_scope(
    nodes: list[ast.stmt], scope: str, findings: list[tuple[str, int]]
) -> None:
    """Collect public defs without docstrings from one module/class body."""
    for node in nodes:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if not _is_public(node.name):
                continue
            qualified = f"{scope}.{node.name}" if scope else node.name
            if ast.get_docstring(node) is None:
                findings.append((qualified, node.lineno))
            if isinstance(node, ast.ClassDef):
                _walk_scope(node.body, qualified, findings)


def missing_docstrings(
    root: Path, packages: tuple[str, ...] = DEFAULT_PACKAGES
) -> list[str]:
    """Every undocumented public def, as ``path:line qualified.name`` lines.

    Args:
        root: the repository root (containing ``src/repro``).
        packages: sub-packages of ``repro`` to check.

    Returns:
        Human-readable finding lines, sorted; empty when the check passes.
    """
    lines: list[str] = []
    for package in packages:
        package_dir = root / "src" / "repro" / package
        for path in sorted(package_dir.rglob("*.py")):
            tree = ast.parse(path.read_text(), filename=str(path))
            findings: list[tuple[str, int]] = []
            if ast.get_docstring(tree) is None:
                findings.append(("<module>", 1))
            _walk_scope(tree.body, "", findings)
            relative = path.relative_to(root)
            lines.extend(
                f"{relative}:{lineno} {name}" for name, lineno in findings
            )
    return lines


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--packages",
        nargs="+",
        default=list(DEFAULT_PACKAGES),
        help="repro sub-packages to check",
    )
    args = parser.parse_args(argv)
    findings = missing_docstrings(REPO_ROOT, tuple(args.packages))
    if findings:
        print(
            f"{len(findings)} public def(s) without docstrings in "
            f"src/repro/{{{','.join(args.packages)}}}:"
        )
        for line in findings:
            print(f"  {line}")
        return 1
    print(
        f"docstring check passed for src/repro/{{{','.join(args.packages)}}}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
